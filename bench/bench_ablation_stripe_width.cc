// Ablation — stripe width vs client I/O engine.
//
// The paper's bandwidth result (Fig. 6) scales with the number of file
// servers, but only a client that issues I/O in parallel can collect that
// scaling: a serial client pays one server round trip per stripe extent, so
// adding columns adds latency, not bandwidth. This harness pits the two
// client modes against each other across stripe widths:
//
//   serial    StripedFs with no IoScheduler — extents issued one at a time
//             (the pre-engine client).
//   parallel  StripedFs over an 8-worker IoScheduler — all extents of a
//             request in flight at once.
//
// Columns are LocalFs roots behind FaultyFs latency injection (a fixed
// per-op service time standing in for a server round trip, the same trick
// the fault schedule uses for chaos latency), so the bandwidth curve
// reflects round-trip counts, not disk caches. Requests are full-width rows
// (width * stripe bytes), the best case the abstraction promises.
//
// Results go to stdout as a table and to BENCH_stripe_scaling.json.
//
// Usage: bench_ablation_stripe_width [out.json|--smoke]
//   --smoke  reduced sizes + regression gate: parallel aggregate bandwidth
//            must rise monotonically 1->4 columns, and the width-4
//            single-extent latency must stay within 10% of width-1.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/striped.h"
#include "par/executor.h"
#include "util/clock.h"

namespace tss::bench {
namespace {

struct StripePoint {
  std::string mode;
  size_t width = 0;
  double write_mbps = 0;
  double read_mbps = 0;
  double aggregate_mbps = 0;  // read + write
  uint64_t single_extent_p50_ns = 0;
};

struct BenchConfig {
  uint64_t stripe = 64 * 1024;
  int rows = 16;                       // full-width rows written and read
  Nanos op_latency = 2 * kMillisecond; // simulated server round trip
  int latency_samples = 25;            // single-extent reads for the p50
};

Result<StripePoint> run_point(const std::string& base, size_t width,
                              IoScheduler* scheduler, const BenchConfig& cfg) {
  std::vector<std::unique_ptr<fs::LocalFs>> locals;
  std::vector<std::unique_ptr<fs::FaultyFs>> columns;
  std::vector<fs::FileSystem*> members;
  // One shared schedule: latency on the data ops only, so open/close and
  // namespace traffic don't pollute the bandwidth numbers.
  fs::FaultSchedule schedule(/*seed=*/1);
  schedule.add_latency(cfg.op_latency, "pread");
  schedule.add_latency(cfg.op_latency, "pwrite");
  for (size_t m = 0; m < width; m++) {
    std::string root = base + "/w" + std::to_string(width) + "_m" +
                       std::to_string(m) + (scheduler ? "_par" : "_ser");
    std::filesystem::create_directories(root);
    locals.push_back(std::make_unique<fs::LocalFs>(root));
    columns.push_back(
        std::make_unique<fs::FaultyFs>(locals.back().get(), &schedule));
    members.push_back(columns.back().get());
  }
  fs::StripedFs striped(members, cfg.stripe, scheduler);

  TSS_ASSIGN_OR_RETURN(
      auto file, striped.open("/bench", fs::OpenFlags::parse("rwc").value()));

  const size_t row_bytes = cfg.stripe * width;
  std::string payload(row_bytes, 'b');
  const double total_mb = static_cast<double>(row_bytes) * cfg.rows /
                          (1024.0 * 1024.0);

  // Write phase: every request covers one full stripe row across all
  // columns — `width` extents in flight per call in parallel mode.
  Nanos start = RealClock::instance().now();
  for (int r = 0; r < cfg.rows; r++) {
    TSS_ASSIGN_OR_RETURN(
        size_t n,
        file->pwrite(payload.data(), row_bytes,
                     static_cast<int64_t>(row_bytes) * r));
    if (n != row_bytes) return Error(EIO, "short bench write");
  }
  Nanos write_elapsed = RealClock::instance().now() - start;

  // Read phase: the same rows back.
  std::vector<char> buffer(row_bytes);
  start = RealClock::instance().now();
  for (int r = 0; r < cfg.rows; r++) {
    TSS_ASSIGN_OR_RETURN(
        size_t n, file->pread(buffer.data(), row_bytes,
                              static_cast<int64_t>(row_bytes) * r));
    if (n != row_bytes) return Error(EIO, "short bench read");
  }
  Nanos read_elapsed = RealClock::instance().now() - start;

  // Single-extent latency: a one-stripe read touches exactly one column;
  // the engine must not tax the narrow case to win the wide one.
  std::vector<Nanos> samples;
  samples.reserve(cfg.latency_samples);
  for (int i = 0; i < cfg.latency_samples; i++) {
    Nanos t0 = RealClock::instance().now();
    TSS_ASSIGN_OR_RETURN(size_t n,
                         file->pread(buffer.data(), cfg.stripe, 0));
    if (n != cfg.stripe) return Error(EIO, "short latency read");
    samples.push_back(RealClock::instance().now() - t0);
  }
  std::sort(samples.begin(), samples.end());

  TSS_RETURN_IF_ERROR(file->close());

  StripePoint point;
  point.mode = scheduler ? "parallel" : "serial";
  point.width = width;
  point.write_mbps =
      write_elapsed > 0
          ? total_mb / (static_cast<double>(write_elapsed) / kSecond)
          : 0;
  point.read_mbps =
      read_elapsed > 0
          ? total_mb / (static_cast<double>(read_elapsed) / kSecond)
          : 0;
  point.aggregate_mbps = point.write_mbps + point.read_mbps;
  point.single_extent_p50_ns =
      static_cast<uint64_t>(samples[samples.size() / 2]);
  return point;
}

const StripePoint* find_point(const std::vector<StripePoint>& points,
                              const std::string& mode, size_t width) {
  for (const StripePoint& p : points) {
    if (p.mode == mode && p.width == width) return &p;
  }
  return nullptr;
}

// The --smoke gate (also run by scripts/check.sh): parallel aggregate
// bandwidth must rise monotonically from 1 to 4 columns, and going wide
// must not tax the single-extent path by more than 10%.
int check_regressions(const std::vector<StripePoint>& points) {
  int failures = 0;
  const StripePoint* prev = nullptr;
  for (size_t width : {1u, 2u, 4u}) {
    const StripePoint* p = find_point(points, "parallel", width);
    if (!p) {
      std::fprintf(stderr, "FAIL: missing parallel width-%zu point\n", width);
      failures++;
      continue;
    }
    if (prev && p->aggregate_mbps <= prev->aggregate_mbps) {
      std::fprintf(stderr,
                   "FAIL: parallel aggregate bandwidth not monotonic: "
                   "width %zu %.1f MB/s <= width %zu %.1f MB/s\n",
                   p->width, p->aggregate_mbps, prev->width,
                   prev->aggregate_mbps);
      failures++;
    }
    prev = p;
  }
  const StripePoint* w1 = find_point(points, "parallel", 1);
  const StripePoint* w4 = find_point(points, "parallel", 4);
  if (w1 && w4 &&
      static_cast<double>(w4->single_extent_p50_ns) >
          1.10 * static_cast<double>(w1->single_extent_p50_ns)) {
    std::fprintf(stderr,
                 "FAIL: single-extent p50 regressed >10%% going wide: "
                 "width-1 %.1f us vs width-4 %.1f us\n",
                 w1->single_extent_p50_ns / 1000.0,
                 w4->single_extent_p50_ns / 1000.0);
    failures++;
  }
  return failures;
}

}  // namespace
}  // namespace tss::bench

int main(int argc, char** argv) {
  using namespace tss::bench;

  bool smoke = false;
  std::string out_path = "BENCH_stripe_scaling.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  BenchConfig cfg;
  if (smoke) {
    cfg.rows = 6;
    cfg.op_latency = 1 * tss::kMillisecond;
    cfg.latency_samples = 15;
  }

  std::string base = "/tmp/tss_bench_stripe_" + std::to_string(::getpid());
  std::filesystem::create_directories(base);

  tss::IoScheduler::Options scheduler_options;
  scheduler_options.workers = 8;
  tss::IoScheduler scheduler(scheduler_options);

  print_header(
      "Ablation: serial vs parallel client across stripe widths",
      "Full-stripe-row I/O over N columns, each op costing one simulated\n"
      "server round trip. serial = one extent in flight (pre-engine\n"
      "client); parallel = all extents of a request in flight at once\n"
      "(par::IoScheduler, 8 workers).");
  print_row({"mode", "width", "write MB/s", "read MB/s", "agg MB/s",
             "1-extent p50"},
            14);

  std::vector<StripePoint> points;
  const size_t widths[] = {1, 2, 4, 8};
  for (tss::IoScheduler* engine : {(tss::IoScheduler*)nullptr, &scheduler}) {
    for (size_t width : widths) {
      auto point = run_point(base, width, engine, cfg);
      if (!point.ok()) {
        std::fprintf(stderr, "point %s/%zu failed: %s\n",
                     engine ? "parallel" : "serial", width,
                     point.error().to_string().c_str());
        continue;
      }
      points.push_back(point.value());
      const StripePoint& p = point.value();
      print_row({p.mode, std::to_string(p.width), fmt_double(p.write_mbps, 1),
                 fmt_double(p.read_mbps, 1), fmt_double(p.aggregate_mbps, 1),
                 fmt_us(static_cast<double>(p.single_extent_p50_ns))},
                14);
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"stripe_scaling\",\n  \"stripe_bytes\": "
       << cfg.stripe << ",\n  \"rows\": " << cfg.rows
       << ",\n  \"op_latency_ns\": " << cfg.op_latency
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const StripePoint& p = points[i];
    json << "    {\"mode\": \"" << p.mode << "\", \"width\": " << p.width
         << ", \"write_mbps\": " << fmt_double(p.write_mbps, 2)
         << ", \"read_mbps\": " << fmt_double(p.read_mbps, 2)
         << ", \"aggregate_mbps\": " << fmt_double(p.aggregate_mbps, 2)
         << ", \"single_extent_p50_ns\": " << p.single_extent_p50_ns << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(base);

  if (smoke) {
    int failures = check_regressions(points);
    if (failures > 0) return 1;
    std::printf("smoke checks passed: parallel scaling monotonic 1->4, "
                "single-extent p50 within 10%%\n");
  }
  return 0;
}
