file(REMOVE_RECURSE
  "CMakeFiles/tss_catalog.dir/catalog.cc.o"
  "CMakeFiles/tss_catalog.dir/catalog.cc.o.d"
  "libtss_catalog.a"
  "libtss_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
