// CachedFs under concurrent fan-out: readers racing eviction, invalidation,
// and refetch on the same hot file through an IoScheduler. Every read must
// deliver a *complete* published version — never a torn mix — while a
// mutator atomically replaces the hot file and an antagonist invalidates
// and churns the capacity. Also compiled into cache_tsan_test with
// -fsanitize=thread (see tests/CMakeLists.txt).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "fs/cached.h"
#include "fs/local.h"
#include "par/executor.h"

namespace tss::fs {
namespace {

#ifdef TSS_TSAN_BUILD
constexpr int kReaders = 6;
constexpr int kReadsEach = 40;
constexpr int kMutations = 40;
#else
constexpr int kReaders = 10;
constexpr int kReadsEach = 120;
constexpr int kMutations = 120;
#endif

class CacheConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/cachecc_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string base_;
  static inline int counter_ = 0;
};

// One published version: 512 bytes, all the same character, so torn reads
// are detectable by inspection.
std::string version_payload(int v) {
  return std::string(512, static_cast<char>('A' + (v % 26)));
}

// A read is valid iff it is some complete version: uniform content of full
// length. (ENOENT is also legal — the reader can race the rename window.)
bool complete_version(const std::string& data) {
  if (data.size() != 512) return false;
  for (char c : data) {
    if (c != data[0]) return false;
  }
  return data[0] >= 'A' && data[0] <= 'Z';
}

TEST_F(CacheConcurrencyTest, ReadersRacingEvictionInvalidationAndRefetch) {
  LocalFs source(base_);
  obs::Registry registry;
  CachedFs::Options options;
  // Tight capacity: the hot entry and the churn files evict each other.
  options.capacity_bytes = 2048;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  ASSERT_TRUE(cache.write_file("/hot", version_payload(0)).ok());

  IoScheduler::Options scheduler_options;
  scheduler_options.workers = kReaders + 2;
  IoScheduler scheduler(scheduler_options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> good_reads{0};

  auto results = fan_out(
      &scheduler, static_cast<size_t>(kReaders + 2),
      [&](size_t job) -> Result<void> {
        if (job == 0) {
          // Mutator: atomically replace the hot file version by version.
          // write-to-temp + rename keeps every published version complete,
          // and both ops invalidate the cache entry.
          for (int v = 1; v <= kMutations; v++) {
            auto w = cache.write_file("/hot.tmp", version_payload(v));
            if (!w.ok()) return w;
            auto r = cache.rename("/hot.tmp", "/hot");
            if (!r.ok()) return r;
          }
          stop.store(true, std::memory_order_release);
          return Result<void>::success();
        }
        if (job == 1) {
          // Antagonist: explicit invalidations plus capacity churn that
          // forces evictions of the hot entry from under the readers.
          int round = 0;
          while (!stop.load(std::memory_order_acquire)) {
            cache.invalidate("/hot");
            std::string churn = "/churn" + std::to_string(round++ % 4);
            auto w = cache.write_file(churn, std::string(900, 'z'));
            if (!w.ok()) return w;
            auto r = cache.read_file(churn);
            if (!r.ok()) return std::move(r).take_error();
          }
          return Result<void>::success();
        }
        // Readers: every successful read must be a complete version.
        for (int i = 0; i < kReadsEach; i++) {
          auto r = cache.read_file("/hot");
          if (!r.ok()) continue;  // raced the rename window
          if (complete_version(r.value())) {
            good_reads.fetch_add(1, std::memory_order_relaxed);
          } else {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        return Result<void>::success();
      });

  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.error().to_string();
  }
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(good_reads.load(), 0u);
  // The counters kept pace with the churn.
  EXPECT_GT(registry.counter("fs.cache.invalidate")->value(), 0u);
  EXPECT_GT(registry.counter("fs.cache.miss")->value(), 0u);
  EXPECT_LE(cache.cached_bytes(), options.capacity_bytes);
}

// Concurrent opens of the same cold file: every reader gets the full bytes,
// and the entry set stays bounded (racing fetches must not double-count).
TEST_F(CacheConcurrencyTest, ConcurrentColdOpensPublishExactlyOneEntry) {
  LocalFs source(base_);
  obs::Registry registry;
  CachedFs::Options options;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  const std::string payload(2048, 'q');
  ASSERT_TRUE(source.write_file("/cold", payload).ok());

  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 8;
  IoScheduler scheduler(scheduler_options);
  auto results = fan_out(&scheduler, 8, [&](size_t) -> Result<void> {
    auto r = cache.read_file("/cold");
    if (!r.ok()) return std::move(r).take_error();
    if (r.value() != payload) return Error(EIO, "short or wrong read");
    return Result<void>::success();
  });
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.error().to_string();
  }
  EXPECT_EQ(cache.cached_bytes(), payload.size());
  EXPECT_GE(registry.counter("fs.cache.miss")->value(), 1u);
}

}  // namespace
}  // namespace tss::fs
