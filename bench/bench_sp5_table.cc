// §8 table — "Application to High Energy Physics" (SP5).
//
// Paper (times in seconds, reproduced from [13]):
//     configuration    init time      time/event
//   1 Unix             446 +- 46      64
//   2 LAN / NFS        4464 +- 172    113
//   3 LAN / TSS        4505 +- 155    113
//   4 WAN / TSS        6275 +- 330    88
//
// Shape to reproduce: initialization slows by an order of magnitude over
// any remote connection (it loads a large tree of scripts and libraries,
// paying a round trip per file); per-event time stays within a factor of
// two (events are CPU-dominated with moderate I/O); the WAN case pays more
// at init (RTT-heavy) but processes events *faster* than LAN because the
// paper's WAN node had a faster processor — "heterogeneity is a fact of
// life in a grid".
//
// Substitution (DESIGN.md §3): the SP5 binary is modeled by the workload
// profile in src/workload (scripts+libraries loaded at init; per-event
// sequential input + a few random config reads + CPU). The TSS rows run the
// real Chirp protocol over a simulated 100 Mb/s link (LAN: 0.1 ms one-way;
// WAN: 10 ms); NFS is the modeled 4 KB-RPC baseline on the same link.
#include "bench/common.h"
#include "sim/chirp_sim.h"

namespace tss::bench {
namespace {

using sim::Cluster;
using sim::Engine;
using sim::SimChirpClient;
using sim::SimChirpServer;
using sim::Task;

// Workload profile (see header comment).
constexpr int kScripts = 1500;
constexpr uint64_t kScriptBytes = 16 << 10;
constexpr int kLibs = 60;
constexpr uint64_t kLibBytes = 8 << 20;
constexpr uint64_t kEventInputBytes = 400 << 20;
constexpr int kEventRandomReads = 64;
constexpr uint64_t kRandomReadBytes = 4096;
constexpr Nanos kInitCpu = 5 * kSecond;
constexpr Nanos kEventCpuLan = 60 * kSecond;
// The WAN machine in the paper was simply faster.
constexpr Nanos kEventCpuWan = 46 * kSecond;

Cluster::Config link_config(Nanos one_way_latency) {
  Cluster::Config config;
  config.nic_bytes_per_sec = 12.5e6;        // 100 Mb/s
  config.backplane_bytes_per_sec = 1.0e9;   // point-to-point: no switch limit
  config.link_latency = one_way_latency;
  return config;
}

struct PhaseTimes {
  double init_seconds = 0;
  double event_seconds = 0;
};

// TSS (CFS through the adapter): one getfile per component at init; per
// event, sequential preads of the input plus a few random config reads.
Task<void> run_tss(Engine& engine, SimChirpClient& client, Nanos event_cpu,
                   PhaseTimes* out) {
  if (!(co_await client.connect()).ok()) co_return;

  Nanos t0 = engine.now();
  co_await engine.sleep_for(kInitCpu);
  for (int i = 0; i < kScripts; i++) {
    auto data = co_await client.getfile("/sp5/s" + std::to_string(i));
    if (!data.ok()) co_return;
  }
  for (int i = 0; i < kLibs; i++) {
    auto data = co_await client.getfile("/sp5/l" + std::to_string(i));
    if (!data.ok()) co_return;
  }
  out->init_seconds = double(engine.now() - t0) / 1e9;

  // One event.
  t0 = engine.now();
  co_await engine.sleep_for(event_cpu);
  auto fd = co_await client.open("/sp5/input",
                                 chirp::OpenFlags::parse("r").value(), 0);
  if (!fd.ok()) co_return;
  uint64_t offset = 0;
  while (offset < kEventInputBytes) {
    uint64_t n = std::min<uint64_t>(1 << 20, kEventInputBytes - offset);
    auto got = co_await client.pread(fd.value(), n, (int64_t)offset);
    if (!got.ok() || got.value() == 0) break;
    offset += got.value();
  }
  for (int i = 0; i < kEventRandomReads; i++) {
    (void)co_await client.pread(fd.value(), kRandomReadBytes,
                                (int64_t)((i * 7919) % 1000) * 4096);
  }
  (void)co_await client.close_fd(fd.value());
  out->event_seconds = double(engine.now() - t0) / 1e9;
}

PhaseTimes run_tss_config(Nanos one_way_latency, Nanos event_cpu) {
  Engine engine;
  Cluster cluster(engine, link_config(one_way_latency));
  SimChirpServer::Options options;
  // The home storage server: a well-provisioned machine whose cache holds
  // the whole working set (the paper's SP5 numbers measure protocol and
  // network, not the home server's disk).
  options.backend.cache_bytes = 2ull << 30;
  SimChirpServer server(cluster, options);
  for (int i = 0; i < kScripts; i++) {
    (void)server.backend().preload_file("/sp5/s" + std::to_string(i),
                                        kScriptBytes);
    (void)server.backend().warm_file("/sp5/s" + std::to_string(i));
  }
  for (int i = 0; i < kLibs; i++) {
    (void)server.backend().preload_file("/sp5/l" + std::to_string(i),
                                        kLibBytes);
    (void)server.backend().warm_file("/sp5/l" + std::to_string(i));
  }
  (void)server.backend().preload_file("/sp5/input", kEventInputBytes);
  (void)server.backend().warm_file("/sp5/input");
  server.backend().take_completion();

  int client_node = cluster.add_node();
  SimChirpClient client(cluster, client_node, server, "worker");
  PhaseTimes result;
  spawn(engine, run_tss(engine, client, event_cpu, &result));
  engine.run();
  return result;
}

// NFS baseline: per-file LOOKUP+GETATTR plus 4 KB READ RPCs.
Task<void> run_nfs(Engine& engine, Cluster& cluster, int client, int server,
                   PhaseTimes* out) {
  constexpr Nanos kServerCpu = 25 * kMicrosecond;
  constexpr uint64_t kHeader = 96;
  auto rpc = [&](uint64_t req, uint64_t resp) -> Task<void> {
    co_await cluster.transfer(client, server, kHeader + req);
    co_await engine.sleep_for(kServerCpu);
    co_await cluster.transfer(server, client, kHeader + resp);
  };
  auto load_file = [&](uint64_t bytes) -> Task<void> {
    co_await rpc(0, 64);  // lookup
    co_await rpc(0, 64);  // getattr
    uint64_t offset = 0;
    while (offset < bytes) {
      uint64_t n = std::min<uint64_t>(4096, bytes - offset);
      co_await rpc(0, n);
      offset += n;
    }
  };

  Nanos t0 = engine.now();
  co_await engine.sleep_for(kInitCpu);
  for (int i = 0; i < kScripts; i++) co_await load_file(kScriptBytes);
  for (int i = 0; i < kLibs; i++) co_await load_file(kLibBytes);
  out->init_seconds = double(engine.now() - t0) / 1e9;

  t0 = engine.now();
  co_await engine.sleep_for(kEventCpuLan);
  uint64_t offset = 0;
  while (offset < kEventInputBytes) {
    uint64_t n = std::min<uint64_t>(4096, kEventInputBytes - offset);
    co_await rpc(0, n);
    offset += n;
  }
  for (int i = 0; i < kEventRandomReads; i++) co_await rpc(0, kRandomReadBytes);
  out->event_seconds = double(engine.now() - t0) / 1e9;
}

PhaseTimes run_nfs_config(Nanos one_way_latency) {
  Engine engine;
  Cluster cluster(engine, link_config(one_way_latency));
  int server = cluster.add_node();
  int client = cluster.add_node();
  PhaseTimes result;
  spawn(engine, run_nfs(engine, cluster, client, server, &result));
  engine.run();
  return result;
}

// Local (Unix) configuration: same CPU profile; I/O from the local buffer
// cache at memory rates.
PhaseTimes run_local() {
  PhaseTimes result;
  double mem_rate = 2.0e9;
  uint64_t init_bytes =
      uint64_t(kScripts) * kScriptBytes + uint64_t(kLibs) * kLibBytes;
  result.init_seconds =
      double(kInitCpu) / 1e9 + double(init_bytes) / mem_rate;
  result.event_seconds =
      double(kEventCpuLan) / 1e9 +
      double(kEventInputBytes + kEventRandomReads * kRandomReadBytes) /
          mem_rate;
  return result;
}

}  // namespace
}  // namespace tss::bench

int main() {
  using namespace tss::bench;
  using tss::kMicrosecond;
  using tss::kMillisecond;

  PhaseTimes unix_local = run_local();
  PhaseTimes lan_nfs = run_nfs_config(100 * kMicrosecond);
  PhaseTimes lan_tss = run_tss_config(100 * kMicrosecond,
                                      tss::bench::kEventCpuLan);
  PhaseTimes wan_tss = run_tss_config(10 * kMillisecond,
                                      tss::bench::kEventCpuWan);

  print_header(
      "Section 8 table: SP5 high-energy-physics workload",
      "Synthetic SP5 profile (DESIGN.md #3) over a simulated 100 Mb/s "
      "link.\nPaper shape: init ~10x slower remote regardless of method; "
      "time/event\nwithin 2x; WAN init > LAN init, but WAN events faster "
      "(faster CPU).\nPaper values: init 446 / 4464 / 4505 / 6275 s; "
      "event 64 / 113 / 113 / 88 s.");
  print_row({"configuration", "init time", "time/event", "init vs unix"});
  auto row = [&](const char* name, const PhaseTimes& t,
                 const PhaseTimes& base) {
    print_row({name, fmt_double(t.init_seconds) + " s",
               fmt_double(t.event_seconds) + " s",
               fmt_double(t.init_seconds / base.init_seconds, 1) + "x"});
  };
  row("1 Unix", unix_local, unix_local);
  row("2 LAN / NFS", lan_nfs, unix_local);
  row("3 LAN / TSS", lan_tss, unix_local);
  row("4 WAN / TSS", wan_tss, unix_local);
  return 0;
}
