file(REMOVE_RECURSE
  "CMakeFiles/tss_fs.dir/cfs.cc.o"
  "CMakeFiles/tss_fs.dir/cfs.cc.o.d"
  "CMakeFiles/tss_fs.dir/dist.cc.o"
  "CMakeFiles/tss_fs.dir/dist.cc.o.d"
  "CMakeFiles/tss_fs.dir/faulty.cc.o"
  "CMakeFiles/tss_fs.dir/faulty.cc.o.d"
  "CMakeFiles/tss_fs.dir/filesystem.cc.o"
  "CMakeFiles/tss_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/tss_fs.dir/local.cc.o"
  "CMakeFiles/tss_fs.dir/local.cc.o.d"
  "CMakeFiles/tss_fs.dir/replicated.cc.o"
  "CMakeFiles/tss_fs.dir/replicated.cc.o.d"
  "CMakeFiles/tss_fs.dir/striped.cc.o"
  "CMakeFiles/tss_fs.dir/striped.cc.o.d"
  "CMakeFiles/tss_fs.dir/stub.cc.o"
  "CMakeFiles/tss_fs.dir/stub.cc.o.d"
  "CMakeFiles/tss_fs.dir/versioned.cc.o"
  "CMakeFiles/tss_fs.dir/versioned.cc.o.d"
  "libtss_fs.a"
  "libtss_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
