file(REMOVE_RECURSE
  "CMakeFiles/tss_util.dir/checksum.cc.o"
  "CMakeFiles/tss_util.dir/checksum.cc.o.d"
  "CMakeFiles/tss_util.dir/clock.cc.o"
  "CMakeFiles/tss_util.dir/clock.cc.o.d"
  "CMakeFiles/tss_util.dir/logging.cc.o"
  "CMakeFiles/tss_util.dir/logging.cc.o.d"
  "CMakeFiles/tss_util.dir/path.cc.o"
  "CMakeFiles/tss_util.dir/path.cc.o.d"
  "CMakeFiles/tss_util.dir/rand.cc.o"
  "CMakeFiles/tss_util.dir/rand.cc.o.d"
  "CMakeFiles/tss_util.dir/strings.cc.o"
  "CMakeFiles/tss_util.dir/strings.cc.o.d"
  "libtss_util.a"
  "libtss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
