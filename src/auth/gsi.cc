#include "auth/gsi.h"

#include <ctime>

#include "util/checksum.h"
#include "util/strings.h"

namespace tss::auth {

TimeFn real_time_fn() {
  return [] { return static_cast<int64_t>(::time(nullptr)); };
}

namespace {
std::string gsi_signing_payload(const std::string& dn, int64_t expires,
                                const std::string& ca) {
  return dn + "|" + std::to_string(expires) + "|" + ca;
}
}  // namespace

std::string GsiCa::issue(const std::string& dn, int64_t expires_unix) const {
  std::string mac =
      weak_mac(key_, gsi_signing_payload(dn, expires_unix, name_));
  return "dn=" + url_encode(dn) + "&expires=" + std::to_string(expires_unix) +
         "&ca=" + url_encode(name_) + "&mac=" + mac;
}

Result<GsiCredentialFields> parse_gsi_credential(const std::string& token) {
  GsiCredentialFields out;
  for (const std::string& pair : split(token, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Error(EINVAL, "gsi: malformed credential field");
    }
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    if (key == "dn") {
      out.dn = url_decode(value);
    } else if (key == "expires") {
      auto n = parse_i64(value);
      if (!n) return Error(EINVAL, "gsi: bad expiry");
      out.expires = *n;
    } else if (key == "ca") {
      out.ca = url_decode(value);
    } else if (key == "mac") {
      out.mac = value;
    } else {
      return Error(EINVAL, "gsi: unknown credential field: " + key);
    }
  }
  if (out.dn.empty() || out.mac.empty() || out.ca.empty()) {
    return Error(EINVAL, "gsi: incomplete credential");
  }
  return out;
}

GsiServerMethod::GsiServerMethod(TimeFn time_fn)
    : time_fn_(std::move(time_fn)) {}

void GsiServerMethod::trust(const GsiCa& ca) { trusted_[ca.name()] = ca.key(); }

Result<Subject> GsiServerMethod::authenticate(const PeerInfo& peer,
                                              const std::string& arg,
                                              ChallengeIo& io) {
  (void)peer;
  (void)io;
  TSS_ASSIGN_OR_RETURN(GsiCredentialFields cred, parse_gsi_credential(arg));
  auto it = trusted_.find(cred.ca);
  if (it == trusted_.end()) {
    return Error(EACCES, "gsi: untrusted CA: " + cred.ca);
  }
  std::string expected =
      weak_mac(it->second, gsi_signing_payload(cred.dn, cred.expires, cred.ca));
  if (expected != cred.mac) {
    return Error(EACCES, "gsi: bad credential signature");
  }
  if (cred.expires <= time_fn_()) {
    return Error(EACCES, "gsi: credential expired");
  }
  return Subject{"globus", cred.dn};
}

}  // namespace tss::auth
