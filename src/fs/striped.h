// StripedFs: transparent block striping across servers — the other §10
// future-work abstraction, again as a plain recursive FileSystem.
//
// A logical file's bytes are distributed round-robin in fixed-size stripe
// units over N underlying filesystems; the same path exists on every
// member, holding that member's stripe column. Byte b of the logical file
// lives on member (b / stripe_size) % N, at member offset
// ((b / stripe_size) / N) * stripe_size + b % stripe_size.
//
// Aggregate bandwidth scales with members (each large read fans out), which
// is exactly why the paper floats striping as a DSFS variation. Namespace
// operations broadcast; the logical size is the sum of the column sizes.
// Sparse logical files are not supported (columns would be ambiguous).
//
// With an IoScheduler attached, a pread/pwrite spanning several stripe
// extents issues all of them concurrently — one member round trip of
// latency instead of one per extent — and reassembles the results with
// the same returned-count semantics as the serial path (reads stop at the
// first short extent; a short column write is EIO). One caveat of the
// parallel path: extents past a short (EOF) extent have already been issued,
// so buffer bytes beyond the returned read count may be overwritten, where
// the serial path left them untouched. POSIX leaves those bytes unspecified
// and callers must not rely on them either way. Member File objects must
// tolerate concurrent operations (every implementation in this tree does:
// LocalFile is plain ::pread/::pwrite, CfsFile serializes internally).
#pragma once

#include <string>
#include <vector>

#include "fs/filesystem.h"
#include "par/executor.h"

namespace tss::fs {

class StripedFs final : public FileSystem {
 public:
  // Members are borrowed and must outlive the StripedFs. At least one.
  // `scheduler` (borrowed, may be null = serial) fans multi-extent I/O and
  // multi-member opens out concurrently.
  StripedFs(std::vector<FileSystem*> members, uint64_t stripe_size = 64 * 1024,
            IoScheduler* scheduler = nullptr);

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  uint64_t stripe_size() const { return stripe_size_; }
  size_t member_count() const { return members_.size(); }

  // Maps a logical offset to (member index, member offset); exposed for
  // tests of the striping arithmetic.
  struct Location {
    size_t member;
    uint64_t offset;
  };
  Location locate(uint64_t logical_offset) const;

 private:
  std::vector<FileSystem*> members_;
  uint64_t stripe_size_;
  IoScheduler* scheduler_;
};

}  // namespace tss::fs
