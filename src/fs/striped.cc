#include "fs/striped.h"

#include "util/path.h"

namespace tss::fs {

namespace {

class StripedFile final : public File {
 public:
  StripedFile(std::vector<std::unique_ptr<File>> columns, uint64_t stripe,
              IoScheduler* scheduler)
      : columns_(std::move(columns)),
        stripe_(stripe),
        scheduler_(scheduler) {}
  ~StripedFile() override { (void)close(); }

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    TSS_ASSIGN_OR_RETURN(std::vector<Extent> extents,
                         extents_of(offset, size));
    char* buffer = static_cast<char*>(data);
    std::vector<Result<size_t>> results =
        fan_out(scheduler_, extents.size(), [&](size_t i) -> Result<size_t> {
          const Extent& e = extents[i];
          return columns_[e.member]->pread(
              buffer + e.buffer_offset, e.length,
              static_cast<int64_t>(e.member_offset));
        });
    // Reassemble with serial semantics: bytes count only up to the first
    // short extent (logical EOF); an error past a short extent would never
    // have been issued serially, so it is not reported either.
    size_t done = 0;
    for (size_t i = 0; i < extents.size(); i++) {
      if (!results[i].ok()) return std::move(results[i]).take_error();
      size_t moved = results[i].value();
      done += moved;
      if (moved < extents[i].length) break;  // EOF
    }
    return done;
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    TSS_ASSIGN_OR_RETURN(std::vector<Extent> extents,
                         extents_of(offset, size));
    const char* buffer = static_cast<const char*>(data);
    std::vector<Result<size_t>> results =
        fan_out(scheduler_, extents.size(), [&](size_t i) -> Result<size_t> {
          const Extent& e = extents[i];
          TSS_ASSIGN_OR_RETURN(
              size_t moved,
              columns_[e.member]->pwrite(
                  buffer + e.buffer_offset, e.length,
                  static_cast<int64_t>(e.member_offset)));
          if (moved != e.length) return Error(EIO, "short stripe write");
          return moved;
        });
    size_t done = 0;
    for (Result<size_t>& result : results) {
      if (!result.ok()) return std::move(result).take_error();
      done += result.value();
    }
    return done;
  }

  Result<void> fsync() override {
    for (auto& column : columns_) {
      if (column) TSS_RETURN_IF_ERROR(column->fsync());
    }
    return Result<void>::success();
  }

  Result<StatInfo> fstat() override {
    StatInfo info;
    bool first = true;
    for (auto& column : columns_) {
      if (!column) continue;
      TSS_ASSIGN_OR_RETURN(StatInfo column_info, column->fstat());
      if (first) {
        info = column_info;
        first = false;
      } else {
        info.size += column_info.size;
      }
    }
    return info;
  }

  Result<void> close() override {
    Result<void> result = Result<void>::success();
    for (auto& column : columns_) {
      if (!column) continue;
      auto rc = column->close();
      if (!rc.ok()) result = std::move(rc);
      column.reset();
    }
    return result;
  }

 private:
  // One stripe extent of a logical [offset, offset+size) range: `length`
  // bytes at `buffer_offset` into the caller's buffer, living on
  // `member` at `member_offset`.
  struct Extent {
    size_t member;
    uint64_t member_offset;
    size_t buffer_offset;
    size_t length;
  };

  // The stripe extents covering [offset, offset+size), in logical order.
  Result<std::vector<Extent>> extents_of(int64_t offset, size_t size) const {
    if (offset < 0) return Error(EINVAL, "negative offset");
    size_t members = columns_.size();
    uint64_t logical = static_cast<uint64_t>(offset);
    std::vector<Extent> extents;
    size_t done = 0;
    while (done < size) {
      uint64_t block = logical / stripe_;
      size_t member = static_cast<size_t>(block % members);
      uint64_t within = logical % stripe_;
      uint64_t member_offset = (block / members) * stripe_ + within;
      size_t extent = static_cast<size_t>(
          std::min<uint64_t>(size - done, stripe_ - within));
      extents.push_back(Extent{member, member_offset, done, extent});
      done += extent;
      logical += extent;
    }
    return extents;
  }

  std::vector<std::unique_ptr<File>> columns_;
  uint64_t stripe_;
  IoScheduler* scheduler_;
};

}  // namespace

StripedFs::StripedFs(std::vector<FileSystem*> members, uint64_t stripe_size,
                     IoScheduler* scheduler)
    : members_(std::move(members)),
      stripe_size_(stripe_size),
      scheduler_(scheduler) {}

StripedFs::Location StripedFs::locate(uint64_t logical_offset) const {
  uint64_t block = logical_offset / stripe_size_;
  size_t member = static_cast<size_t>(block % members_.size());
  uint64_t member_offset = (block / members_.size()) * stripe_size_ +
                           logical_offset % stripe_size_;
  return Location{member, member_offset};
}

Result<std::unique_ptr<File>> StripedFs::open(const std::string& p,
                                              const OpenFlags& flags,
                                              uint32_t mode) {
  std::string canonical = path::sanitize(p);
  // Columns open concurrently (one round trip, not N); all-or-nothing — a
  // striped file is unusable with a missing column, so the first in-order
  // failure wins and any columns that did open are closed by their
  // unique_ptrs.
  std::vector<Result<std::unique_ptr<File>>> opened = fan_out(
      scheduler_, members_.size(),
      [&](size_t m) { return members_[m]->open(canonical, flags, mode); });
  std::vector<std::unique_ptr<File>> columns;
  columns.reserve(members_.size());
  for (Result<std::unique_ptr<File>>& file : opened) {
    if (!file.ok()) return std::move(file).take_error();
    columns.push_back(std::move(file).value());
  }
  return std::unique_ptr<File>(
      new StripedFile(std::move(columns), stripe_size_, scheduler_));
}

Result<StatInfo> StripedFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  StatInfo info;
  bool first = true;
  for (FileSystem* member : members_) {
    TSS_ASSIGN_OR_RETURN(StatInfo column, member->stat(canonical));
    if (first) {
      info = column;
      first = false;
    } else {
      info.size += column.size;
    }
  }
  return info;
}

Result<void> StripedFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  for (FileSystem* member : members_) {
    auto rc = member->unlink(canonical);
    if (!rc.ok() && rc.error().code != ENOENT) return rc;
  }
  return Result<void>::success();
}

Result<void> StripedFs::rename(const std::string& from,
                               const std::string& to) {
  std::string f = path::sanitize(from), t = path::sanitize(to);
  for (FileSystem* member : members_) {
    TSS_RETURN_IF_ERROR(member->rename(f, t));
  }
  return Result<void>::success();
}

Result<void> StripedFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  for (FileSystem* member : members_) {
    auto rc = member->mkdir(canonical, mode);
    if (!rc.ok() && rc.error().code != EEXIST) return rc;
  }
  return Result<void>::success();
}

Result<void> StripedFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  for (FileSystem* member : members_) {
    auto rc = member->rmdir(canonical);
    if (!rc.ok() && rc.error().code != ENOENT) return rc;
  }
  return Result<void>::success();
}

Result<void> StripedFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  // Column c keeps: full stripes for blocks < size/stripe plus the partial
  // block if it lands on c.
  uint64_t full_blocks = size / stripe_size_;
  uint64_t tail = size % stripe_size_;
  size_t members = members_.size();
  for (size_t m = 0; m < members; m++) {
    // Number of complete stripe units on member m.
    uint64_t units = full_blocks / members +
                     ((full_blocks % members) > m ? 1 : 0);
    uint64_t member_size = units * stripe_size_;
    if (tail > 0 && static_cast<size_t>(full_blocks % members) == m) {
      member_size += tail;
    }
    TSS_RETURN_IF_ERROR(members_[m]->truncate(canonical, member_size));
  }
  return Result<void>::success();
}

Result<std::vector<DirEntry>> StripedFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  // Names from the first member; sizes aggregated across members.
  TSS_ASSIGN_OR_RETURN(auto entries, members_[0]->readdir(canonical));
  for (auto& entry : entries) {
    if (entry.info.is_dir) continue;
    for (size_t m = 1; m < members_.size(); m++) {
      auto column =
          members_[m]->stat(path::join(canonical, entry.name));
      if (column.ok()) entry.info.size += column.value().size;
    }
  }
  return entries;
}

}  // namespace tss::fs
