// String helpers shared by the line-oriented wire protocols (Chirp, catalog,
// db) and by the ACL / mountlist parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tss {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

// Splits on runs of whitespace, dropping empty tokens (protocol word split).
std::vector<std::string> split_words(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);

// Parses a decimal signed/unsigned integer; rejects trailing garbage.
std::optional<int64_t> parse_i64(std::string_view s);
std::optional<uint64_t> parse_u64(std::string_view s);

// Glob-style wildcard match supporting '*' (any run, including '/') and '?'.
// This is the matcher used for ACL subjects such as
// "hostname:*.cse.nd.edu" and "globus:/O=Notre_Dame/*".
bool wildcard_match(std::string_view pattern, std::string_view text);

// Percent-encodes characters outside [a-zA-Z0-9._~/-] so that arbitrary file
// names can travel on a space-separated protocol line.
std::string url_encode(std::string_view s);
std::string url_decode(std::string_view s);

// Human-readable byte count, e.g. "1.5 MB" (used by catalog listings).
std::string format_bytes(uint64_t bytes);

// Joins tokens with a single space.
std::string join_words(const std::vector<std::string>& words);

}  // namespace tss
