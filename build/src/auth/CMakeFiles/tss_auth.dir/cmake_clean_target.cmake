file(REMOVE_RECURSE
  "libtss_auth.a"
)
