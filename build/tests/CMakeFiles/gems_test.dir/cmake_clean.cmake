file(REMOVE_RECURSE
  "CMakeFiles/gems_test.dir/gems/gems_test.cc.o"
  "CMakeFiles/gems_test.dir/gems/gems_test.cc.o.d"
  "CMakeFiles/gems_test.dir/gems/gems_wire_test.cc.o"
  "CMakeFiles/gems_test.dir/gems/gems_wire_test.cc.o.d"
  "gems_test"
  "gems_test.pdb"
  "gems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
