# Empty dependencies file for bench_fig6_dsfs_net.
# This may be replaced when dependencies are built.
