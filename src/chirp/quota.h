// Per-subject request quotas: token buckets for ops/sec and bytes/sec.
//
// The allocation tracker bounds how much a tenant may *store*; this bounds
// how fast a tenant may *ask*. Each authenticated subject gets two buckets
// (operations and payload bytes) refilled continuously at the configured
// rate up to a burst ceiling. Enforcement uses a debt model: admission only
// requires a positive balance, and the completed request is then charged at
// its true cost (which may drive the balance negative — necessary because a
// getfile's size is unknown until served). A subject in debt is refused with
// the typed errno EDQUOT until refill pays the debt off, so sustained
// throughput converges on the configured rate regardless of request sizes.
//
// Thread-safe; sized for the reactor's worker pool, not for per-op lock-free
// operation (one mutex, map lookup per admit/charge).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/result.h"

namespace tss::chirp {

class QuotaManager {
 public:
  struct Limits {
    uint64_t ops_per_sec = 0;    // 0 = unlimited
    uint64_t bytes_per_sec = 0;  // 0 = unlimited
    // Bucket ceilings; 0 = one second's worth of the matching rate.
    uint64_t ops_burst = 0;
    uint64_t bytes_burst = 0;

    bool unlimited() const { return ops_per_sec == 0 && bytes_per_sec == 0; }
  };

  struct Options {
    Limits default_limits;                       // applies to every subject
    std::map<std::string, Limits> per_subject;   // overrides by subject name
    Clock* clock = nullptr;                      // null = RealClock
    obs::Registry* metrics = nullptr;            // tenant.quota.* counters
  };

  explicit QuotaManager(Options options);

  // Admission check for one request from `subject`: refills the buckets and
  // refuses with EDQUOT while either balance is non-positive.
  Result<void> admit(const std::string& subject);

  // Charges a completed request at its true cost.
  void charge(const std::string& subject, uint64_t ops, uint64_t bytes);

  // Current balances (tests). Unlimited dimensions report burst.
  struct Balance {
    double ops = 0;
    double bytes = 0;
  };
  Balance balance(const std::string& subject);

 private:
  struct Bucket {
    Limits limits;
    double ops = 0;
    double bytes = 0;
    Nanos last_refill = 0;
  };

  Bucket& bucket_locked(const std::string& subject);
  void refill_locked(Bucket& b);

  Options options_;
  std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace tss::chirp
