// FaultyFs: the deterministic fault-injection decorator itself.
#include "fs/faulty.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "fs/local.h"

namespace tss::fs {
namespace {

class FaultyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/faulty_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    target_ = std::make_unique<LocalFs>(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<LocalFs> target_;
  static inline int counter_ = 0;
};

TEST_F(FaultyTest, PassesThroughWithEmptySchedule) {
  FaultSchedule schedule(7);
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_TRUE(fs.write_file("/a", "payload").ok());
  EXPECT_EQ(fs.read_file("/a").value(), "payload");
  EXPECT_TRUE(fs.stat("/a").ok());
  EXPECT_EQ(schedule.faults_injected(), 0u);
  EXPECT_GT(schedule.ops_seen(), 0u);
}

TEST_F(FaultyTest, FailsNthMatchingOp) {
  FaultSchedule schedule(7);
  schedule.fail_nth(2, EIO, "stat");
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_TRUE(fs.write_file("/a", "x").ok());
  EXPECT_TRUE(fs.stat("/a").ok());         // 1st stat passes
  auto second = fs.stat("/a");             // 2nd fails
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, EIO);
  EXPECT_TRUE(fs.stat("/a").ok());         // 3rd recovers
  EXPECT_EQ(schedule.faults_injected(), 1u);
}

TEST_F(FaultyTest, FailOnceThenRecover) {
  FaultSchedule schedule(7);
  schedule.fail_once(EHOSTUNREACH, "open");
  FaultyFs fs(target_.get(), &schedule);
  auto first = fs.open("/f", OpenFlags::parse("rwc").value(), 0644);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, EHOSTUNREACH);
  auto second = fs.open("/f", OpenFlags::parse("rwc").value(), 0644);
  ASSERT_TRUE(second.ok());
}

TEST_F(FaultyTest, PathPatternScopesTheFault) {
  FaultSchedule schedule(7);
  schedule.fail_always(EIO, "*", "/doomed/*");
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_TRUE(fs.mkdir("/doomed").ok());  // "/doomed" itself doesn't match
  ASSERT_TRUE(fs.mkdir("/fine").ok());
  ASSERT_TRUE(fs.write_file("/fine/a", "ok").ok());
  auto rc = fs.write_file("/doomed/a", "nope");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EIO);
  EXPECT_EQ(fs.read_file("/fine/a").value(), "ok");
}

TEST_F(FaultyTest, FileLevelOpsAreInjectedToo) {
  FaultSchedule schedule(7);
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_TRUE(fs.write_file("/f", "0123456789").ok());
  auto file = fs.open("/f", OpenFlags::parse("rw").value(), 0644);
  ASSERT_TRUE(file.ok());
  schedule.fail_once(EIO, "pread");
  char buf[4];
  auto n = file.value()->pread(buf, 4, 0);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, EIO);
  ASSERT_TRUE(file.value()->pread(buf, 4, 0).ok());  // recovered
  schedule.fail_once(ENOSPC, "pwrite");
  auto w = file.value()->pwrite("zz", 2, 0);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error().code, ENOSPC);
}

TEST_F(FaultyTest, LatencyGoesThroughTheInjectedClock) {
  VirtualClock clock;
  FaultSchedule schedule(7, &clock);
  schedule.add_latency(50 * kMillisecond, "stat");
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_TRUE(fs.write_file("/slow", "x").ok());
  Nanos before = clock.now();
  ASSERT_TRUE(fs.stat("/slow").ok());  // delayed but not failed
  EXPECT_EQ(clock.now() - before, 50 * kMillisecond);
}

TEST_F(FaultyTest, ProbabilisticFaultsAreSeedDeterministic) {
  auto run = [&](uint64_t seed) {
    FaultSchedule schedule(seed);
    schedule.fail_with_probability(0.5, EIO, "stat");
    FaultyFs fs(target_.get(), &schedule);
    (void)fs.write_file("/p", "x");
    std::string outcomes;
    for (int i = 0; i < 32; i++) {
      outcomes.push_back(fs.stat("/p").ok() ? '.' : 'X');
    }
    return outcomes;
  };
  std::string a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);                                  // same seed, same faults
  EXPECT_NE(c, a);                                  // different seed differs
  EXPECT_NE(a.find('X'), std::string::npos);        // some faults fired
  EXPECT_NE(a.find('.'), std::string::npos);        // and some ops passed
}

TEST_F(FaultyTest, ClearRepairsTheInjectedFailure) {
  FaultSchedule schedule(7);
  schedule.fail_always(EHOSTUNREACH);  // total server death
  FaultyFs fs(target_.get(), &schedule);
  ASSERT_FALSE(fs.stat("/").ok());
  ASSERT_FALSE(fs.readdir("/").ok());
  uint64_t injected = schedule.faults_injected();
  EXPECT_EQ(injected, 2u);
  schedule.clear();  // the server comes back
  EXPECT_TRUE(fs.stat("/").ok());
  EXPECT_EQ(schedule.faults_injected(), injected);
}

}  // namespace
}  // namespace tss::fs
