file(REMOVE_RECURSE
  "libtss_catalog.a"
)
