#include "util/result.h"

#include <gtest/gtest.h>

namespace tss {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), 0);
}

TEST(Result, HoldsError) {
  Result<int> r = Error(ENOENT, "no such file");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ENOENT);
  EXPECT_EQ(r.code(), ENOENT);
  EXPECT_EQ(r.error().message, "no such file");
}

TEST(Result, ValueOr) {
  Result<int> ok = 7;
  Result<int> bad = Error(EIO, "io");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ResultVoid, SuccessAndError) {
  Result<void> ok = Result<void>::success();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Error(EACCES, "denied");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), EACCES);
}

Result<int> needs_positive(int x) {
  if (x <= 0) return Error(EINVAL, "not positive");
  return x * 2;
}

Result<int> chained(int x) {
  TSS_ASSIGN_OR_RETURN(int doubled, needs_positive(x));
  return doubled + 1;
}

Result<void> check_only(int x) {
  TSS_RETURN_IF_ERROR(needs_positive(x));
  return Result<void>::success();
}

TEST(Macros, AssignOrReturnPropagates) {
  auto good = chained(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  auto bad = chained(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, EINVAL);
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(check_only(1).ok());
  EXPECT_EQ(check_only(0).code(), EINVAL);
}

TEST(ErrorFromErrno, CapturesCodeAndContext) {
  errno = ENOSPC;
  Error e = Error::from_errno("write /x");
  EXPECT_EQ(e.code, ENOSPC);
  EXPECT_NE(e.message.find("write /x"), std::string::npos);
}

}  // namespace
}  // namespace tss
