// Tests for the §10 future-work abstractions: ReplicatedFs and StripedFs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "fs/local.h"
#include "fs/replicated.h"
#include "fs/striped.h"

namespace tss::fs {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/fsext_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < 3; i++) {
      std::string dir = base_ + "/m" + std::to_string(i);
      std::filesystem::create_directories(dir);
      members_.push_back(std::make_unique<LocalFs>(dir));
      raw_.push_back(members_.back().get());
    }
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string base_;
  std::vector<std::unique_ptr<LocalFs>> members_;
  std::vector<FileSystem*> raw_;
  static inline int counter_ = 0;
};

// --- ReplicatedFs -----------------------------------------------------------

TEST_F(ExtensionsTest, ReplicatedWriteLandsEverywhere) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.write_file("/r.txt", "mirrored").ok());
  for (FileSystem* member : raw_) {
    EXPECT_EQ(member->read_file("/r.txt").value(), "mirrored");
  }
}

TEST_F(ExtensionsTest, ReplicatedReadSurvivesReplicaLoss) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.write_file("/k.txt", "keep me").ok());
  // Destroy the copy on the first two replicas (the preferred read order).
  ASSERT_TRUE(raw_[0]->unlink("/k.txt").ok());
  ASSERT_TRUE(raw_[1]->unlink("/k.txt").ok());
  EXPECT_EQ(fs.read_file("/k.txt").value(), "keep me");
  EXPECT_TRUE(fs.stat("/k.txt").ok());
}

TEST_F(ExtensionsTest, ReplicatedRepairResynchronizes) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.write_file("/fix.txt", "golden").ok());
  ASSERT_TRUE(raw_[1]->unlink("/fix.txt").ok());
  ASSERT_TRUE(raw_[2]->write_file("/fix.txt", "corrupt").ok());
  auto repaired = fs.repair("/fix.txt");
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 2);
  for (FileSystem* member : raw_) {
    EXPECT_EQ(member->read_file("/fix.txt").value(), "golden");
  }
}

TEST_F(ExtensionsTest, ReplicatedNamespaceOpsBroadcast) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.mkdir("/d").ok());
  ASSERT_TRUE(fs.write_file("/d/f", "x").ok());
  ASSERT_TRUE(fs.rename("/d/f", "/d/g").ok());
  for (FileSystem* member : raw_) {
    EXPECT_TRUE(member->stat("/d/g").ok());
    EXPECT_FALSE(member->stat("/d/f").ok());
  }
  ASSERT_TRUE(fs.unlink("/d/g").ok());
  ASSERT_TRUE(fs.rmdir("/d").ok());
  for (FileSystem* member : raw_) {
    EXPECT_FALSE(member->stat("/d").ok());
  }
}

TEST_F(ExtensionsTest, ReplicatedExclusiveCreateStaysExclusive) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.write_file("/once", "1").ok());
  auto second = fs.open("/once", OpenFlags::parse("wcx").value(), 0644);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, EEXIST);
}

TEST_F(ExtensionsTest, ReplicatedOpenHandleFailsOverMidStream) {
  ReplicatedFs fs(raw_);
  ASSERT_TRUE(fs.write_file("/h", "0123456789").ok());
  auto file = fs.open("/h", OpenFlags::parse("r").value(), 0);
  ASSERT_TRUE(file.ok());
  char buf[4];
  ASSERT_TRUE(file.value()->pread(buf, 4, 0).ok());
  // Delete the first replica's copy under the open handle: POSIX keeps the
  // open file alive locally, so instead corrupt replica order by checking
  // fstat still answers.
  EXPECT_TRUE(file.value()->fstat().ok());
  EXPECT_TRUE(file.value()->close().ok());
}

// --- StripedFs ---------------------------------------------------------------

TEST_F(ExtensionsTest, StripeArithmetic) {
  StripedFs fs(raw_, /*stripe_size=*/100);
  // Block b at member b%3, member offset (b/3)*100 + within.
  EXPECT_EQ(fs.locate(0).member, 0u);
  EXPECT_EQ(fs.locate(0).offset, 0u);
  EXPECT_EQ(fs.locate(99).member, 0u);
  EXPECT_EQ(fs.locate(99).offset, 99u);
  EXPECT_EQ(fs.locate(100).member, 1u);
  EXPECT_EQ(fs.locate(100).offset, 0u);
  EXPECT_EQ(fs.locate(250).member, 2u);
  EXPECT_EQ(fs.locate(250).offset, 50u);
  EXPECT_EQ(fs.locate(300).member, 0u);
  EXPECT_EQ(fs.locate(300).offset, 100u);
}

TEST_F(ExtensionsTest, StripedWriteReadRoundTrip) {
  StripedFs fs(raw_, /*stripe_size=*/128);
  std::string data(10000, '\0');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 7 + 1);
  }
  ASSERT_TRUE(fs.write_file("/s.bin", data).ok());
  EXPECT_EQ(fs.read_file("/s.bin").value(), data);
  // The columns really are spread: each member holds roughly a third.
  for (FileSystem* member : raw_) {
    auto info = member->stat("/s.bin");
    ASSERT_TRUE(info.ok());
    EXPECT_GT(info.value().size, 3000u);
    EXPECT_LT(info.value().size, 3500u);
  }
  // Logical size is the sum.
  EXPECT_EQ(fs.stat("/s.bin").value().size, data.size());
}

TEST_F(ExtensionsTest, StripedRandomAccessAcrossBoundaries) {
  StripedFs fs(raw_, 64);
  std::string data(1000, '\0');
  for (size_t i = 0; i < data.size(); i++) data[i] = static_cast<char>(i);
  ASSERT_TRUE(fs.write_file("/ra.bin", data).ok());
  auto file = fs.open("/ra.bin", OpenFlags::parse("r").value(), 0);
  ASSERT_TRUE(file.ok());
  // Read an extent spanning three stripe units (and so all three members).
  char buf[200];
  auto n = file.value()->pread(buf, 200, 30);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 200u);
  EXPECT_EQ(std::string(buf, 200), data.substr(30, 200));
  // Overwrite a boundary-straddling extent.
  auto wfile = fs.open("/ra.bin", OpenFlags::parse("rw").value(), 0);
  ASSERT_TRUE(wfile.ok());
  std::string patch(130, 'Z');
  ASSERT_TRUE(wfile.value()->pwrite(patch.data(), patch.size(), 60).ok());
  std::string expected = data;
  expected.replace(60, 130, patch);
  EXPECT_EQ(fs.read_file("/ra.bin").value(), expected);
}

TEST_F(ExtensionsTest, StripedReadStopsAtLogicalEof) {
  StripedFs fs(raw_, 64);
  ASSERT_TRUE(fs.write_file("/short.bin", std::string(100, 'q')).ok());
  auto file = fs.open("/short.bin", OpenFlags::parse("r").value(), 0);
  ASSERT_TRUE(file.ok());
  char buf[256];
  auto n = file.value()->pread(buf, sizeof buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 100u);
}

TEST_F(ExtensionsTest, StripedTruncateDistributesCorrectly) {
  StripedFs fs(raw_, 64);
  ASSERT_TRUE(fs.write_file("/t.bin", std::string(1000, 't')).ok());
  ASSERT_TRUE(fs.truncate("/t.bin", 200).ok());
  EXPECT_EQ(fs.stat("/t.bin").value().size, 200u);
  auto data = fs.read_file("/t.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), std::string(200, 't'));
  // Grow-truncate: logical size tracks.
  ASSERT_TRUE(fs.truncate("/t.bin", 500).ok());
  EXPECT_EQ(fs.stat("/t.bin").value().size, 500u);
}

TEST_F(ExtensionsTest, StripedMissingColumnFailsOpen) {
  StripedFs fs(raw_, 64);
  ASSERT_TRUE(fs.write_file("/col.bin", std::string(300, 'c')).ok());
  ASSERT_TRUE(raw_[1]->unlink("/col.bin").ok());
  auto file = fs.open("/col.bin", OpenFlags::parse("r").value(), 0);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.error().code, ENOENT);
}

TEST_F(ExtensionsTest, StripedReaddirAggregatesSizes) {
  StripedFs fs(raw_, 64);
  ASSERT_TRUE(fs.mkdir("/dir").ok());
  ASSERT_TRUE(fs.write_file("/dir/a", std::string(600, 'a')).ok());
  auto entries = fs.readdir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].info.size, 600u);
}

// Parameterized property: round trip across a sweep of stripe sizes and
// file lengths, including awkward boundaries.
struct StripeCase {
  uint64_t stripe;
  size_t length;
};

class StripedRoundTrip : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripedRoundTrip, PreservesContent) {
  std::string base = ::testing::TempDir() + "/stripe_rt_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(GetParam().stripe) + "_" +
                     std::to_string(GetParam().length);
  std::vector<std::unique_ptr<LocalFs>> members;
  std::vector<FileSystem*> raw;
  for (int i = 0; i < 3; i++) {
    std::string dir = base + "/m" + std::to_string(i);
    std::filesystem::create_directories(dir);
    members.push_back(std::make_unique<LocalFs>(dir));
    raw.push_back(members.back().get());
  }
  StripedFs fs(raw, GetParam().stripe);
  std::string data(GetParam().length, '\0');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>((i * 131) & 0xFF);
  }
  ASSERT_TRUE(fs.write_file("/f", data).ok());
  EXPECT_EQ(fs.read_file("/f").value(), data);
  EXPECT_EQ(fs.stat("/f").value().size, data.size());
  std::filesystem::remove_all(base);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripedRoundTrip,
    ::testing::Values(StripeCase{1, 10}, StripeCase{7, 100},
                      StripeCase{64, 64}, StripeCase{64, 65},
                      StripeCase{64, 191}, StripeCase{64, 192},
                      StripeCase{4096, 100000}, StripeCase{100, 0}));

}  // namespace
}  // namespace tss::fs
