file(REMOVE_RECURSE
  "CMakeFiles/tss_sim.dir/chirp_sim.cc.o"
  "CMakeFiles/tss_sim.dir/chirp_sim.cc.o.d"
  "CMakeFiles/tss_sim.dir/cluster.cc.o"
  "CMakeFiles/tss_sim.dir/cluster.cc.o.d"
  "CMakeFiles/tss_sim.dir/engine.cc.o"
  "CMakeFiles/tss_sim.dir/engine.cc.o.d"
  "CMakeFiles/tss_sim.dir/resources.cc.o"
  "CMakeFiles/tss_sim.dir/resources.cc.o.d"
  "CMakeFiles/tss_sim.dir/sim_backend.cc.o"
  "CMakeFiles/tss_sim.dir/sim_backend.cc.o.d"
  "libtss_sim.a"
  "libtss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
