// Self-describing DSFS volumes: create_volume / mount_volume and the
// adapter's /dsfs/<host:port>@<volume>/... auto-mount — the §6 mountlist
// example made real.
#include "adapter/dsfs_mount.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "adapter/adapter.h"
#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

namespace tss::adapter {
namespace {

class DsfsMountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/dsfsmount_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < 3; i++) {
      std::string root = base_ + "/server" + std::to_string(i);
      std::filesystem::create_directories(root);
      chirp::ServerOptions options;
      options.owner = "unix:testowner";
      options.root_acl =
          acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      servers_.push_back(std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(root),
          std::move(auth)));
      ASSERT_TRUE(servers_.back()->start().ok());
    }
    options_.credentials = {
        std::make_shared<auth::HostnameClientCredential>()};
    options_.retry.base_delay = 5 * kMillisecond;
  }

  void TearDown() override {
    for (auto& s : servers_) s->stop();
    std::filesystem::remove_all(base_);
  }

  std::map<std::string, net::Endpoint> data_servers() {
    // Servers 1 and 2 hold data; server 0 is the directory server.
    return {{"d1", servers_[1]->endpoint()}, {"d2", servers_[2]->endpoint()}};
  }

  std::string base_;
  std::vector<std::unique_ptr<chirp::Server>> servers_;
  DsfsMountOptions options_;
  static inline int counter_ = 0;
};

TEST(VolumeManifest, SerializeParseRoundTrip) {
  VolumeManifest manifest;
  manifest.data_dir = "/run5/data";
  manifest.servers["a"] = net::Endpoint{"10.0.0.1", 9094};
  manifest.servers["b with space"] = net::Endpoint{"10.0.0.2", 9095};
  auto parsed = VolumeManifest::parse(manifest.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().data_dir, "/run5/data");
  ASSERT_EQ(parsed.value().servers.size(), 2u);
  EXPECT_EQ(parsed.value().servers.at("b with space").port, 9095);
}

TEST(VolumeManifest, RejectsJunk) {
  EXPECT_FALSE(VolumeManifest::parse("not a manifest").ok());
  EXPECT_FALSE(VolumeManifest::parse("tssvol v1\n").ok());  // no servers
  EXPECT_FALSE(
      VolumeManifest::parse("tssvol v1\nserver a 1.2.3.4:1\n").ok());
}

TEST_F(DsfsMountTest, CreateThenMountThenShareAcrossClients) {
  ASSERT_TRUE(create_volume(servers_[0]->endpoint(), "run5", data_servers(),
                            options_)
                  .ok());

  auto mount_a = mount_volume(servers_[0]->endpoint(), "run5", options_);
  ASSERT_TRUE(mount_a.ok()) << mount_a.error().to_string();
  ASSERT_TRUE(mount_a.value()->filesystem()->mkdir("/data", 0755).ok());
  ASSERT_TRUE(mount_a.value()
                  ->filesystem()
                  ->write_file("/data/shared.dat", "volume bytes")
                  .ok());

  // A second, independent client mounts by name alone and sees the data.
  auto mount_b = mount_volume(servers_[0]->endpoint(), "run5", options_);
  ASSERT_TRUE(mount_b.ok());
  EXPECT_EQ(mount_b.value()->filesystem()->read_file("/data/shared.dat").value(),
            "volume bytes");
}

TEST_F(DsfsMountTest, MountOfMissingVolumeFails) {
  auto mount = mount_volume(servers_[0]->endpoint(), "ghost", options_);
  ASSERT_FALSE(mount.ok());
  EXPECT_EQ(mount.error().code, ENOENT);
}

TEST_F(DsfsMountTest, AdapterDsfsNamespaceEndToEnd) {
  ASSERT_TRUE(create_volume(servers_[0]->endpoint(), "run5", data_servers(),
                            options_)
                  .ok());

  Adapter::Options adapter_options;
  adapter_options.credentials = options_.credentials;
  adapter_options.retry = options_.retry;
  Adapter adapter(adapter_options);

  // The §6 mountlist line: /data -> /dsfs/<dir-server>@run5/data.
  std::string spec =
      "/dsfs/" + servers_[0]->endpoint().to_string() + "@run5";
  ASSERT_TRUE(adapter.mkdir(spec + "/data").ok());
  ASSERT_TRUE(adapter.load_mountlist("/data " + spec + "/data\n").ok());

  ASSERT_TRUE(adapter.write_file("/data/out.bin", "through the adapter").ok());
  EXPECT_EQ(adapter.read_file("/data/out.bin").value(), "through the adapter");

  // The file's bytes live on one of the *data* servers, as a DistFs data
  // file, while the stub sits in the volume tree on the directory server.
  bool found_data = false;
  for (int i = 1; i <= 2; i++) {
    for (auto& entry : std::filesystem::recursive_directory_iterator(
             base_ + "/server" + std::to_string(i))) {
      if (entry.is_regular_file() &&
          entry.path().string().find("/run5/data/") != std::string::npos) {
        found_data = true;
      }
    }
  }
  EXPECT_TRUE(found_data);
  EXPECT_TRUE(std::filesystem::exists(base_ + "/server0/run5/tree/data/out.bin"));
}

TEST_F(DsfsMountTest, AdapterRejectsMalformedDsfsSpec) {
  Adapter::Options adapter_options;
  adapter_options.credentials = options_.credentials;
  Adapter adapter(adapter_options);
  EXPECT_EQ(adapter.stat("/dsfs/no-volume-separator/x").code(), EINVAL);
}

}  // namespace
}  // namespace tss::adapter
