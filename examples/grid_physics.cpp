// Grid physics: the §8 scenario — an SP5-like simulation job deployed on a
// "grid node", reaching its home storage through the TSS.
//
// The home institution runs a Chirp file server over the application's
// existing install tree (no copies, no transformation — recursive
// abstraction). The job lands on a worker that has none of the application
// installed; the adapter gives it the same namespace it had at home via a
// mountlist, authenticated with a (simulated) GSI credential:
//
//     /sp5  ->  /cfs/<home-server>/sp5
//
// The job then runs its init phase (load every script and library) and a
// few events, timed locally vs through the TSS. Finally, the real ptrace
// tracer demonstrates the "unmodified application" claim: /bin/cat reads a
// result file through a /tss/... path that only exists in the adapter.
//
// Run:  ./grid_physics    (exits 0 on success)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "adapter/adapter.h"
#include "adapter/adapter_fs.h"
#include "auth/gsi.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/local.h"
#include "parrot/tracer.h"
#include "util/path.h"
#include "workload/sp5.h"

using namespace tss;

namespace {
int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _r = (expr);                                              \
    if (!_r.ok()) {                                                \
      std::printf("FAILED: %s: %s\n", #expr,                       \
                  _r.error().to_string().c_str());                 \
      return 1;                                                    \
    }                                                              \
  } while (0)
}  // namespace

int main() {
  std::string home = "/tmp/tss-gridphys-" + std::to_string(::getpid());
  std::filesystem::create_directories(home);

  // --- Home institution: install SP5 and export it over Chirp + GSI. -------
  std::printf("==> installing the SP5 application tree at the home site\n");
  workload::Sp5Config sp5;
  sp5.script_count = 60;
  sp5.script_bytes = 4 * 1024;
  sp5.library_count = 8;
  sp5.library_bytes = 256 * 1024;
  sp5.input_bytes = 2 << 20;
  sp5.event_input_bytes = 128 * 1024;
  sp5.event_output_bytes = 16 * 1024;
  fs::LocalFs local(home);
  CHECK_OK(workload::sp5_install(local, sp5));

  std::printf("==> exporting it with GSI authentication\n");
  auth::GsiCa ca("nd-ca", "the-campus-ca-key");
  chirp::ServerOptions options;
  options.owner = "unix:physics-admin";
  // Only Notre Dame grid credentials may touch the data (§8: "access
  // controls are set so that only grid users with the appropriate
  // credentials may access the data").
  options.root_acl = acl::Acl::parse("globus:/O=Notre_Dame/* rwl\n").value();
  auto auth_registry = std::make_unique<auth::ServerAuth>();
  auto gsi = std::make_unique<auth::GsiServerMethod>();
  gsi->trust(ca);
  auth_registry->add(std::move(gsi));
  chirp::Server server(options, std::make_unique<chirp::PosixBackend>(home),
                       std::move(auth_registry));
  CHECK_OK(server.start());

  // --- Grid worker: adapter + mountlist + GSI proxy. ------------------------
  std::printf("==> grid job starts with a GSI proxy and a mountlist\n");
  std::string credential =
      ca.issue("/O=Notre_Dame/CN=Grid_Pilot_17", ::time(nullptr) + 3600);
  adapter::Adapter::Options adapter_options;
  adapter_options.credentials = {
      std::make_shared<auth::GsiClientCredential>(credential)};
  adapter::Adapter adapter(adapter_options);
  CHECK_OK(adapter.load_mountlist(
      "/sp5 /cfs/" + server.endpoint().to_string() + "/sp5\n"));

  // A wrong credential is refused outright.
  {
    auth::GsiCa rogue("rogue-ca", "not-the-campus-key");
    adapter::Adapter::Options bad_options;
    bad_options.credentials = {std::make_shared<auth::GsiClientCredential>(
        rogue.issue("/O=Notre_Dame/CN=Impostor", ::time(nullptr) + 3600))};
    bad_options.retry.max_attempts = 1;
    adapter::Adapter impostor(bad_options);
    CHECK_OK(impostor.load_mountlist(
        "/sp5 /cfs/" + server.endpoint().to_string() + "/sp5\n"));
    auto denied = impostor.stat("/sp5/data/input.dat");
    std::printf("    impostor credential: %s (expected: denied)\n",
                denied.ok() ? "allowed?!" : "denied");
  }

  // --- Run the workload locally and through the TSS; the AdapterFs shim
  // routes the FileSystem-speaking workload through the adapter namespace.
  adapter::AdapterFs remote(adapter);

  std::printf("==> running SP5 init + 3 events, local vs through the TSS\n");
  workload::Sp5Config local_cfg = sp5;  // same tree, local paths
  int64_t t0 = now_ms();
  CHECK_OK(workload::sp5_init(local, local_cfg));
  int64_t local_init = now_ms() - t0;

  t0 = now_ms();
  CHECK_OK(workload::sp5_init(remote, sp5));
  int64_t tss_init = now_ms() - t0;

  t0 = now_ms();
  for (int e = 0; e < 3; e++) CHECK_OK(workload::sp5_event(local, local_cfg, e));
  int64_t local_events = now_ms() - t0;

  t0 = now_ms();
  for (int e = 3; e < 6; e++) CHECK_OK(workload::sp5_event(remote, sp5, e));
  int64_t tss_events = now_ms() - t0;

  std::printf("    init:    local %lld ms, TSS %lld ms\n",
              (long long)local_init, (long long)tss_init);
  std::printf("    events:  local %lld ms, TSS %lld ms (3 events each)\n",
              (long long)local_events, (long long)tss_events);

  // --- The Parrot demonstration: an unmodified binary reads TSS data. ------
  if (parrot::tracer_supported()) {
    std::printf(
        "==> running unmodified /bin/cat on a /tss/... path via ptrace\n");
    std::string cache = home + "-cache";
    std::filesystem::create_directories(cache);
    parrot::TraceOptions trace;
    trace.virtual_prefix = "/tss";
    trace.fetch = [&](const std::string& virtual_path) -> Result<std::string> {
      auto data = adapter.read_file("/sp5" + virtual_path);
      if (!data.ok()) return std::move(data).take_error();
      std::string local_copy = cache + "/" + path::basename(virtual_path);
      std::ofstream out(local_copy, std::ios::binary);
      out << data.value();
      return local_copy;
    };
    auto stats = parrot::trace_run(
        {"/bin/sh", "-c", "exec cat /tss/scripts/script0.tcl > /dev/null"},
        trace);
    if (stats.ok() && stats.value().exit_code == 0) {
      std::printf(
          "    cat exit 0; %llu syscalls traced, %llu paths redirected\n",
          (unsigned long long)stats.value().syscall_count,
          (unsigned long long)stats.value().rewrites);
    } else {
      std::printf("    tracer run failed (ok in restricted sandboxes)\n");
    }
    std::filesystem::remove_all(cache);
  }

  std::printf("==> grid physics example complete\n");
  server.stop();
  std::filesystem::remove_all(home);
  return 0;
}
