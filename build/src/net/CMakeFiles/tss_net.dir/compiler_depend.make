# Empty compiler generated dependencies file for tss_net.
# This may be replaced when dependencies are built.
