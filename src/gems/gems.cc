#include "gems/gems.h"

#include <algorithm>
#include <ctime>

#include "util/checksum.h"
#include "util/logging.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::gems {

std::string encode_replicas(const std::vector<Replica>& replicas) {
  std::string out;
  for (const Replica& r : replicas) {
    if (!out.empty()) out += ',';
    out += url_encode(r.server);
    out += ':';
    out += url_encode(r.path);
  }
  return out;
}

std::vector<Replica> decode_replicas(const std::string& encoded) {
  std::vector<Replica> out;
  if (encoded.empty()) return out;
  for (const std::string& token : split(encoded, ',')) {
    size_t colon = token.find(':');
    if (colon == std::string::npos) continue;
    out.push_back(Replica{url_decode(token.substr(0, colon)),
                          url_decode(token.substr(colon + 1))});
  }
  return out;
}

Gems::Gems(db::Store* catalog, std::map<std::string, fs::FileSystem*> servers,
           GemsOptions options)
    : catalog_(catalog),
      servers_(std::move(servers)),
      options_(std::move(options)),
      rng_(options_.name_seed ? options_.name_seed
                              : static_cast<uint64_t>(::time(nullptr))) {
  for (const auto& [name, fs] : servers_) server_names_.push_back(name);
  options_.volume = path::sanitize(options_.volume);
  if (options_.space_budget != 0) {
    chirp::AllocTracker::Options topts;
    topts.root_limit = options_.space_budget;  // in-memory: no journal_path
    if (auto t = chirp::AllocTracker::open(std::move(topts)); t.ok()) {
      tracker_ = std::move(t).value();
    }
  }
}

Result<chirp::AllocTracker::Reservation> Gems::reserve_space(uint64_t bytes) {
  // The catalog is the committed truth; pending reservations layered on top
  // make racing writers visible to each other before either's record lands.
  // (A racer observed between its put and its commit is double-counted for
  // a moment — conservative, never an undercount.)
  TSS_ASSIGN_OR_RETURN(uint64_t stored, stored_bytes());
  tracker_->sync_inuse("/", stored);
  return tracker_->reserve("/", bytes);
}

Result<void> Gems::format() {
  for (const auto& [name, fs] : servers_) {
    TSS_RETURN_IF_ERROR(fs::mkdir_recursive(*fs, options_.volume));
  }
  return Result<void>::success();
}

std::string Gems::new_data_path(const std::string& logical_name) {
  return path::join(options_.volume,
                    url_encode(logical_name) + "." + rng_.hex(10));
}

Result<void> Gems::ingest(const std::string& logical_name,
                          std::string_view data,
                          const std::map<std::string, std::string>& attributes) {
  if (server_names_.empty()) return Error(ENODEV, "gems: no data servers");
  if (catalog_->get(logical_name).ok()) {
    return Error(EEXIST, "gems: dataset exists: " + logical_name);
  }
  // Reserve-then-commit: the hold is counted against the budget for the
  // whole write+register window, so two racing ingests cannot both pass a
  // stale check and overshoot together. The hold self-releases on any
  // failure path below.
  chirp::AllocTracker::Reservation hold;
  if (tracker_ != nullptr) {
    auto r = reserve_space(data.size());
    if (!r.ok()) {
      return Error(ENOSPC, "gems: space budget exceeded");
    }
    hold = std::move(r).value();
  }

  const std::string& server_name =
      server_names_[rng_.below(server_names_.size())];
  std::string data_path = new_data_path(logical_name);
  TSS_RETURN_IF_ERROR(
      servers_[server_name]->write_file(data_path, data, 0644));

  db::Record record;
  record[db::kIdField] = logical_name;
  record["size"] = std::to_string(data.size());
  record["checksum"] = hash_to_hex(fnv1a64(data));
  record["replicas"] = encode_replicas({Replica{server_name, data_path}});
  record["problems"] = "";
  for (const auto& [key, value] : attributes) {
    if (key == "id" || key == "size" || key == "checksum" ||
        key == "replicas" || key == "problems") {
      return Error(EINVAL, "gems: reserved attribute name: " + key);
    }
    record[key] = value;
  }
  TSS_RETURN_IF_ERROR(catalog_->put(record));
  // The catalog now owns the bytes; future reserve_space syncs pick them up.
  hold.commit_external();
  return Result<void>::success();
}

Result<std::string> Gems::fetch(const std::string& logical_name) {
  TSS_ASSIGN_OR_RETURN(db::Record record, catalog_->get(logical_name));
  Error last(ENOENT, "gems: no live replica of " + logical_name);
  for (const Replica& replica : decode_replicas(record["replicas"])) {
    auto it = servers_.find(replica.server);
    if (it == servers_.end()) continue;
    auto data = it->second->read_file(replica.path);
    if (data.ok()) return data;
    last = std::move(data).take_error();
  }
  return last;
}

Result<std::vector<db::Record>> Gems::search(const std::string& field,
                                             const std::string& value) const {
  return catalog_->query(field, value);
}

Result<db::Record> Gems::record_of(const std::string& logical_name) const {
  return catalog_->get(logical_name);
}

Result<uint64_t> Gems::stored_bytes() const {
  TSS_ASSIGN_OR_RETURN(auto records, catalog_->scan());
  uint64_t total = 0;
  for (const db::Record& record : records) {
    auto size_it = record.find("size");
    auto replicas_it = record.find("replicas");
    if (size_it == record.end() || replicas_it == record.end()) continue;
    auto size = parse_u64(size_it->second);
    if (!size) continue;
    total += *size * decode_replicas(replicas_it->second).size();
  }
  return total;
}

Result<int> Gems::replica_count(const std::string& logical_name) const {
  TSS_ASSIGN_OR_RETURN(db::Record record, catalog_->get(logical_name));
  return static_cast<int>(decode_replicas(record["replicas"]).size());
}

Result<void> Gems::verify_replica(const db::Record& record,
                                  const Replica& replica) {
  auto it = servers_.find(replica.server);
  if (it == servers_.end()) {
    return Error(EHOSTUNREACH, "unknown server " + replica.server);
  }
  auto expected_size = parse_u64(record.at("size"));
  if (!expected_size) return Error(EINVAL, "bad size in record");
  // Existence + size first (cheap), then content checksum.
  TSS_ASSIGN_OR_RETURN(fs::StatInfo info, it->second->stat(replica.path));
  if (info.size != *expected_size) {
    return Error(EIO, "size mismatch on " + replica.server);
  }
  TSS_ASSIGN_OR_RETURN(std::string data, it->second->read_file(replica.path));
  if (hash_to_hex(fnv1a64(data)) != record.at("checksum")) {
    return Error(EIO, "checksum mismatch on " + replica.server);
  }
  return Result<void>::success();
}

Result<int> Gems::audit_step() {
  int problems = 0;
  std::vector<db::Record> updates;
  TSS_ASSIGN_OR_RETURN(auto records, catalog_->scan());
  for (const db::Record& record : records) {
    std::vector<Replica> live;
    std::vector<Replica> dead = decode_replicas(record.count("problems")
                                                    ? record.at("problems")
                                                    : "");
    bool changed = false;
    for (const Replica& replica :
         decode_replicas(record.at("replicas"))) {
      auto ok = verify_replica(record, replica);
      if (ok.ok()) {
        live.push_back(replica);
      } else {
        TSS_DEBUG("gems") << "audit: lost replica of " << record.at("id")
                          << " on " << replica.server << ": "
                          << ok.error().to_string();
        dead.push_back(replica);
        changed = true;
        problems++;
      }
    }
    if (changed) {
      db::Record updated = record;
      updated["replicas"] = encode_replicas(live);
      updated["problems"] = encode_replicas(dead);
      updates.push_back(std::move(updated));
    }
  }
  for (const db::Record& record : updates) {
    TSS_RETURN_IF_ERROR(catalog_->put(record));
  }
  return problems;
}

Result<bool> Gems::replicate_step() {
  // Choose the record most in need: fewest live replicas, problems first.
  std::optional<db::Record> chosen;
  size_t chosen_live = SIZE_MAX;
  bool chosen_has_problem = false;
  TSS_ASSIGN_OR_RETURN(auto records, catalog_->scan());
  for (const db::Record& record : records) {
    size_t live = decode_replicas(record.at("replicas")).size();
    if (live == 0) continue;  // nothing left to copy from
    bool has_problem = record.count("problems") &&
                       !record.at("problems").empty();
    if (options_.max_replicas > 0 &&
        live >= static_cast<size_t>(options_.max_replicas) && !has_problem) {
      continue;
    }
    if (live >= servers_.size()) continue;  // already everywhere it can be
    bool better = false;
    if (!chosen) {
      better = true;
    } else if (has_problem != chosen_has_problem) {
      better = has_problem;
    } else {
      better = live < chosen_live;
    }
    if (better) {
      chosen = record;
      chosen_live = live;
      chosen_has_problem = has_problem;
    }
  }
  if (!chosen) return false;

  auto size = parse_u64(chosen->at("size"));
  if (!size) return Error(EINVAL, "gems: bad size in record");
  // Same reserve-then-commit discipline as ingest: the hold spans the copy
  // and the catalog update, so concurrent replicators (or a racing ingest)
  // cannot jointly overrun the budget.
  chirp::AllocTracker::Reservation hold;
  if (tracker_ != nullptr) {
    auto r = reserve_space(*size);
    if (!r.ok()) {
      if (r.error().code == ENOSPC) {
        return false;  // budget reached; nothing to do
      }
      return std::move(r).take_error();
    }
    hold = std::move(r).value();
  }

  std::vector<Replica> live = decode_replicas(chosen->at("replicas"));
  // A server not currently holding a replica.
  std::string target;
  for (const std::string& candidate : server_names_) {
    bool holds = std::any_of(
        live.begin(), live.end(),
        [&](const Replica& r) { return r.server == candidate; });
    if (!holds) {
      target = candidate;
      break;
    }
  }
  if (target.empty()) return false;

  // Copy from the first live replica that works.
  std::string data_path = new_data_path(chosen->at("id"));
  bool copied = false;
  for (const Replica& source : live) {
    auto src_it = servers_.find(source.server);
    if (src_it == servers_.end()) continue;
    auto rc = fs::copy_file(*src_it->second, source.path, *servers_[target],
                            data_path);
    if (rc.ok()) {
      copied = true;
      break;
    }
    TSS_DEBUG("gems") << "replicate: copy from " << source.server
                      << " failed: " << rc.error().to_string();
  }
  if (!copied) {
    return Error(EIO, "gems: no live source for " + chosen->at("id"));
  }

  live.push_back(Replica{target, data_path});
  db::Record updated = *chosen;
  updated["replicas"] = encode_replicas(live);
  // A successful repair clears the problem notation (the damage has been
  // compensated; the dead paths are gone for good).
  if (chosen_has_problem) updated["problems"] = "";
  TSS_RETURN_IF_ERROR(catalog_->put(updated));
  hold.commit_external();
  TSS_INFO("gems") << "replicated " << chosen->at("id") << " -> " << target
                   << " (" << live.size() << " replicas)";
  return true;
}

Result<int> Gems::replicate_until_stable(int max_steps) {
  int copies = 0;
  for (int i = 0; i < max_steps; i++) {
    TSS_ASSIGN_OR_RETURN(bool progressed, replicate_step());
    if (!progressed) break;
    copies++;
  }
  return copies;
}

}  // namespace tss::gems
