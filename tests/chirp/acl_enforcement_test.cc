// ACL enforcement through the full server stack, including the paper's
// reserve-right (V) walkthrough and owner-eviction semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chirp/test_util.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

class AclEnforcementTest : public ChirpServerFixture {};

TEST_F(AclEnforcementTest, ReadOnlySubjectCannotWrite) {
  set_root_acl("hostname:localhost rl\n");
  start_server();
  Client client = connect_client();

  EXPECT_TRUE(client.stat("/").ok());
  auto open_write = client.open("/x", OpenFlags::parse("wc").value());
  ASSERT_FALSE(open_write.ok());
  EXPECT_EQ(open_write.error().code, EACCES);
  EXPECT_EQ(client.putfile("/x", "data").code(), EACCES);
  EXPECT_EQ(client.mkdir("/d").code(), EACCES);
}

TEST_F(AclEnforcementTest, WriteWithoutDeleteCannotUnlink) {
  set_root_acl("hostname:localhost rwl\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/x", "data").ok());
  auto rc = client.unlink("/x");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EACCES);
}

TEST_F(AclEnforcementTest, DeleteRightAllowsUnlinkButNotWrite) {
  // "The right to delete (but not modify) files can be given to others by
  // granting the D right" (§4).
  set_root_acl("hostname:localhost rld\n");
  start_server();
  Client client = connect_client();
  // Owner-side setup: drop a file directly into the export root.
  {
    std::ofstream out(host_path("/x"));
    out << "payload";
  }
  EXPECT_EQ(client.putfile("/x", "overwrite").code(), EACCES);
  EXPECT_TRUE(client.unlink("/x").ok());
}

TEST_F(AclEnforcementTest, NoListRightHidesNamespace) {
  set_root_acl("hostname:localhost rw\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/x", "1").ok());
  EXPECT_EQ(client.getdir("/").code(), EACCES);
  EXPECT_EQ(client.stat("/x").code(), EACCES);  // stat needs L
  // But reads still work: R was granted.
  auto got = client.getfile("/x");
  EXPECT_TRUE(got.ok());
}

TEST_F(AclEnforcementTest, UnknownSubjectGetsNothing) {
  set_root_acl("hostname:trusted.nd.edu rwl\n");
  start_server();
  Client client = connect_client();  // authenticates as hostname:localhost
  EXPECT_EQ(client.stat("/").code(), EACCES);
  EXPECT_EQ(client.getfile("/anything").code(), EACCES);
}

TEST_F(AclEnforcementTest, OwnerBypassesAllAcls) {
  // "The owner of a file server retains access to all data on that server"
  // (§4). Owner here authenticates via hostname.
  set_root_acl("hostname:nobody.example.com rwl\n");
  start_server(/*owner=*/"hostname:localhost");
  Client client = connect_client();
  EXPECT_TRUE(client.putfile("/evictme", "x").ok());
  EXPECT_TRUE(client.unlink("/evictme").ok());
  EXPECT_TRUE(client.getdir("/").ok());
}

TEST_F(AclEnforcementTest, ReservedMkdirGrantsParenthesizedRightsOnly) {
  // The §4 walkthrough: root ACL gives localhost v(rwl) — no direct W, no A
  // inside the reservation.
  set_root_acl("hostname:localhost lv(rwl)\n");
  start_server();
  Client client = connect_client();

  // Direct write at root: denied (V is not W).
  EXPECT_EQ(client.putfile("/direct", "x").code(), EACCES);

  // mkdir via the reserve right succeeds.
  ASSERT_TRUE(client.mkdir("/backup").ok());

  // The fresh directory's ACL is exactly "hostname:localhost rwl".
  auto acl_text = client.getacl("/backup");
  ASSERT_TRUE(acl_text.ok());
  auto acl = acl::Acl::parse(acl_text.value()).value();
  EXPECT_TRUE(
      acl.check("hostname:localhost", acl::kRead | acl::kWrite | acl::kList));
  EXPECT_FALSE(acl.check("hostname:localhost", acl::kAdmin));

  // Inside the reservation the user can work freely...
  EXPECT_TRUE(client.putfile("/backup/f", "data").ok());
  // ...but cannot extend access to others (no A right).
  auto setacl = client.setacl("/backup", "unix:friend", "rwl");
  ASSERT_FALSE(setacl.ok());
  EXPECT_EQ(setacl.error().code, EACCES);
}

TEST_F(AclEnforcementTest, ReserveWithAdminAllowsDelegation) {
  // A v(rwla) reservation (the globus line in the paper's example) lets the
  // visitor administer their own directory.
  set_root_acl("hostname:localhost v(rwla)\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/workspace").ok());
  EXPECT_TRUE(client.setacl("/workspace", "unix:collaborator", "rwl").ok());
  auto acl_text = client.getacl("/workspace");
  ASSERT_TRUE(acl_text.ok());
  auto acl = acl::Acl::parse(acl_text.value()).value();
  EXPECT_TRUE(acl.check("unix:collaborator", acl::kRead | acl::kWrite));
}

TEST_F(AclEnforcementTest, MkdirUnderWriteInheritsParentAcl) {
  set_root_acl("hostname:localhost rwlda\nunix:other rl\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/sub").ok());
  auto acl_text = client.getacl("/sub");
  ASSERT_TRUE(acl_text.ok());
  auto acl = acl::Acl::parse(acl_text.value()).value();
  // Inherited: both entries survive into the child directory.
  EXPECT_TRUE(acl.check("hostname:localhost", acl::kWrite));
  EXPECT_TRUE(acl.check("unix:other", acl::kRead));
}

TEST_F(AclEnforcementTest, NestedDirectoryUsesItsOwnAcl) {
  set_root_acl("hostname:localhost v(rwl)\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/mine").ok());
  // Inside /mine the user holds rwl, so nested mkdir inherits /mine's ACL.
  ASSERT_TRUE(client.mkdir("/mine/deeper").ok());
  EXPECT_TRUE(client.putfile("/mine/deeper/f", "x").ok());
  // Root is still not writable.
  EXPECT_EQ(client.putfile("/not-allowed", "x").code(), EACCES);
}

TEST_F(AclEnforcementTest, AclFileIsHiddenAndUnreachable) {
  set_root_acl("hostname:localhost rwldav(rwlda)\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  // Direct access to the ACL file is refused in every form.
  EXPECT_EQ(client.getfile("/d/.__acl__").code(), EACCES);
  EXPECT_EQ(client.putfile("/d/.__acl__", "unix:evil rwlda\n").code(), EACCES);
  EXPECT_EQ(client.unlink("/d/.__acl__").code(), EACCES);
  EXPECT_EQ(client.rename("/d/.__acl__", "/d/acl-copy").code(), EACCES);
  EXPECT_EQ(client.open("/d/.__acl__", OpenFlags::parse("r").value()).code(),
            EACCES);
}

TEST_F(AclEnforcementTest, SetaclRequiresAdminRight) {
  set_root_acl("hostname:localhost rwld\n");  // no A
  start_server();
  Client client = connect_client();
  auto rc = client.setacl("/", "unix:mallory", "rwlda");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EACCES);
}

TEST_F(AclEnforcementTest, AdminCanExtendAndRevokeAccess) {
  set_root_acl("hostname:localhost rwlda\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.setacl("/", "unix:friend", "rl").ok());
  auto acl = acl::Acl::parse(client.getacl("/").value()).value();
  EXPECT_TRUE(acl.check("unix:friend", acl::kRead));
  // Revoke by setting "-".
  ASSERT_TRUE(client.setacl("/", "unix:friend", "-").ok());
  acl = acl::Acl::parse(client.getacl("/").value()).value();
  EXPECT_FALSE(acl.check("unix:friend", acl::kRead));
}

TEST_F(AclEnforcementTest, RenameNeedsDeleteAtSourceAndWriteAtTarget) {
  set_root_acl("hostname:localhost rwlv(rwl)\n");  // no D at root
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/f", "x").ok());
  auto rc = client.rename("/f", "/g");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EACCES);
}

TEST_F(AclEnforcementTest, RmdirCleansUpAclFile) {
  set_root_acl("hostname:localhost rwlda\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  // The directory holds only its ACL file; rmdir must still succeed.
  ASSERT_TRUE(client.rmdir("/d").ok());
  EXPECT_FALSE(std::filesystem::exists(host_path("/d")));
}

}  // namespace
}  // namespace tss::chirp
