#include "net/buffer_pool.h"

#include <cstdlib>

namespace tss::net {

PoolBuffer::~PoolBuffer() { reset(); }

PoolBuffer& PoolBuffer::operator=(PoolBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = other.pool_;
    p_ = other.p_;
    cap_ = other.cap_;
    other.pool_ = nullptr;
    other.p_ = nullptr;
    other.cap_ = 0;
  }
  return *this;
}

void PoolBuffer::reset() {
  if (p_ != nullptr) {
    if (pool_ != nullptr) {
      pool_->release(p_);
    } else {
      std::free(p_);
    }
  }
  pool_ = nullptr;
  p_ = nullptr;
  cap_ = 0;
}

BufferPool::BufferPool(size_t buffer_size, size_t max_free)
    : buffer_size_((buffer_size + kAlignment - 1) / kAlignment * kAlignment),
      max_free_(max_free) {}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (char* p : free_) std::free(p);
  free_.clear();
}

PoolBuffer BufferPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      char* p = free_.back();
      free_.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return PoolBuffer(this, p, buffer_size_);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (::posix_memalign(&p, kAlignment, buffer_size_) != 0) {
    return PoolBuffer();
  }
  return PoolBuffer(this, static_cast<char*>(p), buffer_size_);
}

void BufferPool::release(char* p) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() < max_free_) {
      free_.push_back(p);
      return;
    }
  }
  std::free(p);
}

BufferPool& BufferPool::global() {
  // Intentionally leaked: outlives every PoolBuffer, including ones parked
  // in static-destruction-ordered objects.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace tss::net
