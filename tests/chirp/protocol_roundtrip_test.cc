// Wire-protocol fuzz: every request and response line must survive
// encode -> parse -> encode byte-for-byte, for every Op (including the new
// `stats` op), with hostile field contents — embedded newlines, NULs,
// percent signs, spaces — and random payload sizes. Seeded, so a failure
// replays exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chirp/protocol.h"
#include "util/rand.h"

namespace tss::chirp {
namespace {

// Random string over a hostile alphabet: control characters, separators,
// the escape character itself, and high bytes. `min_len` 1 for fields that
// must be a non-empty wire token (paths are sanitized to at least "/"
// before they ever reach the encoder; an empty token cannot be framed).
std::string nasty_string(Rng& rng, size_t max_len, size_t min_len = 0) {
  static const char kPool[] = {'\n', '\r', '\0', ' ', '%', '/', '.', '-',
                               'a',  'z',  'A',  '0', '9', '_', '~', '\t',
                               static_cast<char>(0xFF),
                               static_cast<char>(0x80)};
  size_t len = min_len + rng.below(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; i++) {
    out += kPool[rng.below(sizeof(kPool))];
  }
  return out;
}

// A safe single token (no spaces), for fields the protocol sends raw.
std::string token(Rng& rng) { return rng.hex(1 + rng.below(8)); }

OpenFlags random_flags(Rng& rng) {
  OpenFlags f;
  f.read = rng.below(2);
  f.write = rng.below(2);
  f.create = rng.below(2);
  f.truncate = rng.below(2);
  f.exclusive = rng.below(2);
  f.append = rng.below(2);
  f.sync = rng.below(2);
  return f;
}

Request random_request(Rng& rng, Op op) {
  Request r;
  r.op = op;
  r.path = nasty_string(rng, 64, /*min_len=*/1);
  r.path2 = nasty_string(rng, 64, /*min_len=*/1);
  r.fd = static_cast<int64_t>(rng.below(1u << 20));
  // pread/pwrite lengths above kMaxRpcPayload are rejected by parse (by
  // design); everything else takes any size.
  r.length = (op == Op::kPread || op == Op::kPwrite)
                 ? rng.below(kMaxRpcPayload + 1)
                 : rng.next();
  r.offset = static_cast<int64_t>(rng.below(1ull << 40));
  r.mode = static_cast<uint32_t>(rng.below(07777 + 1));
  r.flags = random_flags(rng);
  r.version = static_cast<int>(rng.below(100));
  r.auth_method = token(rng);
  r.auth_arg = nasty_string(rng, 32);
  // "-" is the wire sentinel for an empty auth arg, so a literal "-" does
  // not round-trip (documented quirk); skip that one corner.
  if (r.auth_arg == "-") r.auth_arg.clear();
  r.acl_subject = nasty_string(rng, 32, /*min_len=*/1);
  r.acl_rights = token(rng);
  return r;
}

TEST(ProtocolRoundtrip, EveryOpSurvivesEncodeParseEncode) {
  Rng rng(0xC41Fu);
  for (int op_index = 0; op_index < kOpCount; op_index++) {
    Op op = static_cast<Op>(op_index);
    for (int round = 0; round < 200; round++) {
      Request request = random_request(rng, op);
      std::string line = encode_request(request);

      // The encoded form is a single clean ASCII line whatever the fields
      // contained — framing can never be broken from inside.
      EXPECT_EQ(line.find('\n'), std::string::npos) << op_name(op);
      EXPECT_EQ(line.find('\r'), std::string::npos) << op_name(op);
      EXPECT_EQ(line.find('\0'), std::string::npos) << op_name(op);

      auto parsed = parse_request_line(line);
      ASSERT_TRUE(parsed.ok())
          << op_name(op) << ": " << parsed.error().to_string()
          << "\nline: " << line;
      EXPECT_EQ(parsed.value().op, op);
      EXPECT_EQ(parsed.value().payload_len(), request.payload_len())
          << op_name(op);

      std::string line2 = encode_request(parsed.value());
      EXPECT_EQ(line2, line) << op_name(op) << " round " << round;
    }
  }
}

TEST(ProtocolRoundtrip, PathFieldsSurviveExactly) {
  Rng rng(0xBEEF);
  for (int round = 0; round < 500; round++) {
    Request request = random_request(rng, Op::kRename);
    auto parsed = parse_request_line(encode_request(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().path, request.path);
    EXPECT_EQ(parsed.value().path2, request.path2);
  }
  for (int round = 0; round < 500; round++) {
    Request request = random_request(rng, Op::kAuth);
    auto parsed = parse_request_line(encode_request(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().auth_method, request.auth_method);
    EXPECT_EQ(parsed.value().auth_arg, request.auth_arg);
  }
}

TEST(ProtocolRoundtrip, PayloadSizesSurviveAcrossTheFullRange) {
  Rng rng(7);
  const uint64_t lengths[] = {0,    1,
                              511,  4096,
                              kMaxRpcPayload - 1, kMaxRpcPayload};
  for (uint64_t length : lengths) {
    Request request = random_request(rng, Op::kPwrite);
    request.length = length;
    auto parsed = parse_request_line(encode_request(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().length, length);
    EXPECT_EQ(parsed.value().payload_len(), length);
  }
  // putfile sizes are not capped by kMaxRpcPayload (streaming path).
  Request request = random_request(rng, Op::kPutfile);
  request.length = 100ull << 30;
  auto parsed = parse_request_line(encode_request(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().payload_len(), 100ull << 30);
  // ...but pwrite past the cap is refused at parse time.
  request = random_request(rng, Op::kPwrite);
  request.length = kMaxRpcPayload + 1;
  EXPECT_FALSE(parse_request_line(encode_request(request)).ok());
}

TEST(ProtocolRoundtrip, ResponsesSurviveEncodeParseEncode) {
  Rng rng(0xD00D);
  for (int round = 0; round < 500; round++) {
    Response response;
    if (rng.below(2)) {
      // Success with 0-4 token args (ok-line tokens are emitted raw, so
      // they are generated as tokens — matching how the server builds them).
      size_t n = rng.below(5);
      for (size_t i = 0; i < n; i++) {
        response.args.push_back(rng.below(2) ? std::to_string(rng.next())
                                             : token(rng));
      }
    } else {
      response.err = 1 + static_cast<int>(rng.below(200));
      response.message = nasty_string(rng, 80);
    }
    std::string line = encode_response_line(response);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.find('\0'), std::string::npos);

    auto parsed = parse_response_line(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.value().err, response.err);
    if (response.err != 0) {
      EXPECT_EQ(parsed.value().message, response.message);
    } else {
      EXPECT_EQ(parsed.value().args, response.args);
    }
    EXPECT_EQ(encode_response_line(parsed.value()), line);
  }
}

TEST(ProtocolRoundtrip, VersionCapabilityTokensSurvive) {
  Request request;
  request.op = Op::kVersion;
  request.version = kProtocolVersion;
  request.caps = {kCapChecksum, "futurecap"};
  auto parsed = parse_request_line(encode_request(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().version, kProtocolVersion);
  EXPECT_EQ(parsed.value().caps, request.caps);

  // The pre-checksum wire form — no tokens — still parses (old peers).
  auto bare = parse_request_line("version 1");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().caps.empty());
}

TEST(ProtocolRoundtrip, PwriteChecksumTokenSurvives) {
  Rng rng(0x50C5);
  for (int round = 0; round < 200; round++) {
    Request request = random_request(rng, Op::kPwrite);
    request.has_checksum = true;
    request.checksum = rng.next();
    std::string line = encode_request(request);
    auto parsed = parse_request_line(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed.value().has_checksum);
    EXPECT_EQ(parsed.value().checksum, request.checksum);
    EXPECT_EQ(encode_request(parsed.value()), line);
  }
  // Without the flag, no token is emitted and none is parsed back — the
  // old four-word form stays byte-identical.
  Request plain = random_request(rng, Op::kPwrite);
  plain.has_checksum = false;
  auto parsed = parse_request_line(encode_request(plain));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().has_checksum);
}

TEST(ProtocolRoundtrip, PwriteGarbageChecksumTokenIsRejected) {
  // A peer that advertises the capability and then sends a mangled digest
  // token is violating the protocol; the parse fails outright rather than
  // silently skipping verification.
  const char* bad[] = {"pwrite 3 10 0 NOTAHEXNOTAHEX!!",
                       "pwrite 3 10 0 deadbeef",            // truncated
                       "pwrite 3 10 0 00000000DEADBEEF",    // upper case
                       "pwrite 3 10 0 0123456789abcdef0"};  // too long
  for (const char* line : bad) {
    auto parsed = parse_request_line(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.error().code, EPROTO) << line;
  }
  // The well-formed token parses.
  auto good = parse_request_line("pwrite 3 10 0 0123456789abcdef");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().has_checksum);
  EXPECT_EQ(good.value().checksum, 0x0123456789abcdefULL);
}

TEST(ProtocolRoundtrip, SumTrailerLineRoundTrips) {
  Rng rng(0x7341);
  for (int round = 0; round < 200; round++) {
    uint64_t digest = rng.next();
    auto parsed = parse_sum_line(encode_sum_line(digest));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), digest);
  }
  const char* bad[] = {"", "sum", "sum deadbeef", "sum 0123456789ABCDEF",
                       "sum 0123456789abcdef extra", "mus 0123456789abcdef",
                       "sum NOTAHEXNOTAHEX!!"};
  for (const char* line : bad) {
    auto parsed = parse_sum_line(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.error().code, EPROTO) << line;
  }
}

TEST(ProtocolRoundtrip, GarbageLinesNeverCrashTheParser) {
  Rng rng(0xFACE);
  int accepted = 0;
  for (int round = 0; round < 2000; round++) {
    std::string garbage = nasty_string(rng, 120);
    auto request = parse_request_line(garbage);
    if (request.ok()) accepted++;  // fine, as long as it didn't crash
    auto response = parse_response_line(garbage);
    (void)response;
  }
  // Random control-character soup should essentially never parse as a
  // valid RPC.
  EXPECT_LE(accepted, 20);
}

}  // namespace
}  // namespace tss::chirp
