// Ablation — control+data on one connection vs FTP-style separate data
// connections.
//
// §4: "All file data is carried over the same connection as is used for
// control. This allows the underlying TCP connection to reach and maintain
// the maximum needed window size. In contrast, protocols such as FTP
// separate data and control, resulting in multiple TCP slow starts when
// multiple files must be transmitted."
//
// This harness quantifies that design choice with a TCP slow-start model on
// the simulated 1 Gb/s LAN: transferring N files back to back either on one
// long-lived connection (the congestion window stays open) or with a fresh
// data connection per file (handshake + slow start from scratch each time,
// as in FTP).
#include <algorithm>
#include <cmath>

#include "bench/common.h"

namespace tss::bench {
namespace {

constexpr double kRttSeconds = 0.0002;        // 200 us LAN RTT
constexpr double kRateBytesPerSec = 112.0e6;  // practical 1 Gb/s payload
constexpr double kMss = 1448;                 // TCP segment payload
constexpr double kInitialWindowSegments = 2;  // RFC 2581-era initial cwnd

// Seconds to move `bytes` starting from congestion window `cwnd0` segments;
// the window doubles every RTT until the path is rate-limited.
double transfer_seconds(double bytes, double cwnd0) {
  double bdp = kRateBytesPerSec * kRttSeconds;  // bytes per RTT at line rate
  double window = cwnd0 * kMss;
  double seconds = 0;
  double remaining = bytes;
  while (remaining > 0 && window < bdp) {
    double sent = std::min(remaining, window);
    seconds += kRttSeconds;  // one RTT per slow-start round
    remaining -= sent;
    window *= 2;
  }
  if (remaining > 0) seconds += remaining / kRateBytesPerSec;
  return seconds;
}

}  // namespace
}  // namespace tss::bench

int main() {
  using namespace tss::bench;

  print_header(
      "Ablation: single control+data connection (Chirp) vs per-file data "
      "connections (FTP-style)",
      "TCP slow-start model, 1 Gb/s / 200 us RTT. 64 files per batch.\n"
      "Chirp pays one slow start per session; FTP pays a handshake plus a\n"
      "fresh slow start per file — the cost §4 calls out.");
  print_row(
      {"file size", "chirp (s)", "ftp-style (s)", "ftp/chirp"}, 18);

  constexpr int kFiles = 64;
  for (double file_bytes :
       {8.0e3, 64.0e3, 256.0e3, 1.0e6, 8.0e6, 64.0e6}) {
    // One connection: a single slow start amortized over the whole batch.
    double chirp =
        transfer_seconds(file_bytes * kFiles, kInitialWindowSegments);
    // Per-file connections: 1.5 RTT handshake + per-file slow start.
    double ftp = 0;
    for (int i = 0; i < kFiles; i++) {
      ftp += 1.5 * kRttSeconds +
             transfer_seconds(file_bytes, kInitialWindowSegments);
    }
    std::string label = file_bytes >= 1e6
                            ? fmt_double(file_bytes / 1e6, 0) + " MB"
                            : fmt_double(file_bytes / 1e3, 0) + " KB";
    print_row({label, fmt_double(chirp, 4), fmt_double(ftp, 4),
               fmt_double(ftp / chirp, 2) + "x"},
              18);
  }
  std::printf(
      "\nSmall files suffer most: the batch never escapes slow start on the\n"
      "FTP model, while the single Chirp connection runs at line rate.\n");
  return 0;
}
