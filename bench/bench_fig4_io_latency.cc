// Figure 4 — "I/O Call Latency".
//
// Paper: the latency of single I/O calls over a 1 Gb/s Ethernet, comparing
// Parrot+CFS, kernel NFS (caching off), and Parrot+DSFS. Expected shape:
//   - Parrot+CFS is comparable to (and for stat/open slightly better than)
//     Unix+NFS, because Chirp needs no per-component lookups;
//   - CFS wins on the 8 KB transfers, which NFS splits into 4 KB RPCs;
//   - DSFS matches CFS for reads/writes but pays ~2x on metadata
//     operations (stub fetch + data-server op);
//   - all of this dwarfs the Parrot trap overhead of Figure 3.
//
// The Chirp columns run the real protocol (encoder/parser/SessionCore) over
// the simulated 1 Gb/s cluster; the NFS column is the modeled baseline
// (per-component LOOKUP, 4 KB transfer cap) on the same network. A fixed
// per-call trap cost — the Figure 3 measurement — is added to the Parrot
// columns.
#include <map>

#include "bench/common.h"
#include "sim/chirp_sim.h"

namespace tss::bench {
namespace {

using sim::Cluster;
using sim::Engine;
using sim::SimChirpClient;
using sim::SimChirpServer;
using sim::Task;

// Representative Parrot trap cost per application call (see Figure 3; the
// paper's point is that this is an order of magnitude *below* the network
// latencies in this figure).
constexpr Nanos kTrapOverhead = 6 * kMicrosecond;

constexpr int kIterations = 64;

chirp::OpenFlags flags_of(const char* s) {
  return chirp::OpenFlags::parse(s).value();
}

using Results = std::map<std::string, double>;

Task<void> measure_cfs(Engine& engine, SimChirpClient& client, Results* out) {
  auto connected = co_await client.connect();
  if (!connected.ok()) co_return;

  // Setup: /f holds 8 KB, cache-warm after the first accesses.
  auto setup_fd = co_await client.open("/f", flags_of("wc"), 0644);
  if (!setup_fd.ok()) co_return;
  (void)co_await client.pwrite(setup_fd.value(), 8192, 0);
  (void)co_await client.close_fd(setup_fd.value());
  (void)co_await client.stat("/f");

  Nanos t0 = engine.now();
  for (int i = 0; i < kIterations; i++) (void)co_await client.stat("/f");
  (*out)["stat"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    auto fd = co_await client.open("/f", flags_of("r"), 0);
    if (fd.ok()) (void)co_await client.close_fd(fd.value());
  }
  (*out)["open/close"] = double(engine.now() - t0) / (kIterations);

  auto rfd = co_await client.open("/f", flags_of("rw"), 0);
  if (!rfd.ok()) co_return;
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await client.pread(rfd.value(), 1, 0);
  }
  (*out)["read 1b"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await client.pread(rfd.value(), 8192, 0);
  }
  (*out)["read 8kb"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await client.pwrite(rfd.value(), 1, 0);
  }
  (*out)["write 1b"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await client.pwrite(rfd.value(), 8192, 0);
  }
  (*out)["write 8kb"] = double(engine.now() - t0) / kIterations;
}

// DSFS: metadata operations touch the directory server (stub fetch) and the
// data server; reads/writes go directly to the data server.
Task<void> measure_dsfs(Engine& engine, SimChirpClient& dir_client,
                        SimChirpClient& data_client, Results* out) {
  if (!(co_await dir_client.connect()).ok()) co_return;
  if (!(co_await data_client.connect()).ok()) co_return;

  fs::Stub stub{"data", "/vol/data42"};
  if (!(co_await dir_client.mkdir("/tree")).ok()) co_return;
  if (!(co_await dir_client.putfile("/tree/f", stub.serialize())).ok()) {
    co_return;
  }
  if (!(co_await data_client.mkdir("/vol")).ok()) co_return;
  auto setup_fd = co_await data_client.open("/vol/data42", flags_of("wc"), 0644);
  if (!setup_fd.ok()) co_return;
  (void)co_await data_client.pwrite(setup_fd.value(), 8192, 0);
  (void)co_await data_client.close_fd(setup_fd.value());

  Nanos t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    auto text = co_await dir_client.getfile("/tree/f");
    if (!text.ok()) co_return;
    auto parsed = fs::Stub::parse(text.value());
    if (!parsed.ok()) co_return;
    (void)co_await data_client.stat(parsed.value().data_path);
  }
  (*out)["stat"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    auto text = co_await dir_client.getfile("/tree/f");
    if (!text.ok()) co_return;
    auto fd = co_await data_client.open("/vol/data42", flags_of("r"), 0);
    if (fd.ok()) (void)co_await data_client.close_fd(fd.value());
  }
  (*out)["open/close"] = double(engine.now() - t0) / kIterations;

  // Once open, access is direct: identical to CFS.
  auto rfd = co_await data_client.open("/vol/data42", flags_of("rw"), 0);
  if (!rfd.ok()) co_return;
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await data_client.pread(rfd.value(), 1, 0);
  }
  (*out)["read 1b"] = double(engine.now() - t0) / kIterations;
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await data_client.pread(rfd.value(), 8192, 0);
  }
  (*out)["read 8kb"] = double(engine.now() - t0) / kIterations;
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await data_client.pwrite(rfd.value(), 1, 0);
  }
  (*out)["write 1b"] = double(engine.now() - t0) / kIterations;
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    (void)co_await data_client.pwrite(rfd.value(), 8192, 0);
  }
  (*out)["write 8kb"] = double(engine.now() - t0) / kIterations;
}

// NFS baseline model on the same simulated network: request-response RPCs,
// per-component LOOKUP, 4 KB transfer ceiling, ~kernel-grade server CPU.
constexpr Nanos kNfsServerCpu = 25 * kMicrosecond;
constexpr uint64_t kNfsHeader = 96;

Task<void> nfs_rpc(Cluster& cluster, int client, int server,
                   uint64_t request_payload, uint64_t response_payload) {
  co_await cluster.transfer(client, server, kNfsHeader + request_payload);
  co_await cluster.engine().sleep_for(kNfsServerCpu);
  co_await cluster.transfer(server, client, kNfsHeader + response_payload);
}

Task<void> measure_nfs(Engine& engine, Cluster& cluster, int client,
                       int server, Results* out) {
  // stat of /f: LOOKUP(f) + GETATTR.
  Nanos t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 0, 64);  // lookup
    co_await nfs_rpc(cluster, client, server, 0, 64);  // getattr
  }
  (*out)["stat"] = double(engine.now() - t0) / kIterations;

  // open/close: LOOKUP + GETATTR (access check); close is client-local.
  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 0, 64);
    co_await nfs_rpc(cluster, client, server, 0, 64);
  }
  (*out)["open/close"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 0, 1);
  }
  (*out)["read 1b"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 0, 4096);
    co_await nfs_rpc(cluster, client, server, 0, 4096);
  }
  (*out)["read 8kb"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 1, 0);
  }
  (*out)["write 1b"] = double(engine.now() - t0) / kIterations;

  t0 = engine.now();
  for (int i = 0; i < kIterations; i++) {
    co_await nfs_rpc(cluster, client, server, 4096, 0);
    co_await nfs_rpc(cluster, client, server, 4096, 0);
  }
  (*out)["write 8kb"] = double(engine.now() - t0) / kIterations;
}

}  // namespace
}  // namespace tss::bench

int main() {
  using namespace tss::bench;
  using namespace tss;

  Results cfs, dsfs, nfs;
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::Cluster::Config{});
    sim::SimChirpServer cfs_server(cluster, sim::SimChirpServer::Options{});
    int client_node = cluster.add_node();
    sim::SimChirpClient client(cluster, client_node, cfs_server, "client");
    spawn(engine, measure_cfs(engine, client, &cfs));
    engine.run();
  }
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::Cluster::Config{});
    sim::SimChirpServer dir_server(cluster, sim::SimChirpServer::Options{});
    sim::SimChirpServer data_server(cluster, sim::SimChirpServer::Options{});
    int client_node = cluster.add_node();
    sim::SimChirpClient dir_client(cluster, client_node, dir_server, "client");
    sim::SimChirpClient data_client(cluster, client_node, data_server,
                                    "client");
    spawn(engine, measure_dsfs(engine, dir_client, data_client, &dsfs));
    engine.run();
  }
  {
    sim::Engine engine;
    sim::Cluster cluster(engine, sim::Cluster::Config{});
    int server_node = cluster.add_node();
    int client_node = cluster.add_node();
    spawn(engine,
          measure_nfs(engine, cluster, client_node, server_node, &nfs));
    engine.run();
  }

  print_header(
      "Figure 4: I/O call latency over a simulated 1 Gb/s Ethernet",
      "Chirp columns run the real protocol/session code over the simulated\n"
      "cluster, plus the Figure 3 trap cost (~6 us) on each Parrot call.\n"
      "Paper shape: CFS <= NFS on stat/open (no lookups) and on the 8 KB\n"
      "transfers (no 4 KB RPC split); DSFS ~2x CFS on metadata only.");
  print_row({"call", "parrot+cfs", "unix+nfs", "parrot+dsfs"});
  for (const char* op : {"stat", "open/close", "read 1b", "read 8kb",
                         "write 1b", "write 8kb"}) {
    double trap = static_cast<double>(kTrapOverhead);
    print_row({op, fmt_us(cfs[op] + trap), fmt_us(nfs[op]),
               fmt_us(dsfs[op] + trap)});
  }
  return 0;
}
