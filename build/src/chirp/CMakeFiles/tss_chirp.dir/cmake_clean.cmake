file(REMOVE_RECURSE
  "CMakeFiles/tss_chirp.dir/client.cc.o"
  "CMakeFiles/tss_chirp.dir/client.cc.o.d"
  "CMakeFiles/tss_chirp.dir/posix_backend.cc.o"
  "CMakeFiles/tss_chirp.dir/posix_backend.cc.o.d"
  "CMakeFiles/tss_chirp.dir/protocol.cc.o"
  "CMakeFiles/tss_chirp.dir/protocol.cc.o.d"
  "CMakeFiles/tss_chirp.dir/server.cc.o"
  "CMakeFiles/tss_chirp.dir/server.cc.o.d"
  "CMakeFiles/tss_chirp.dir/session.cc.o"
  "CMakeFiles/tss_chirp.dir/session.cc.o.d"
  "libtss_chirp.a"
  "libtss_chirp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_chirp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
