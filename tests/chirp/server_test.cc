// End-to-end Chirp protocol tests against a live server over loopback TCP.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "chirp/test_util.h"
#include "util/path.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

class ChirpServerTest : public ChirpServerFixture {};

TEST_F(ChirpServerTest, VersionHandshakeAndWhoami) {
  start_server();
  Client client = connect_client();
  auto whoami = client.whoami();
  ASSERT_TRUE(whoami.ok());
  EXPECT_EQ(whoami.value(), "hostname:localhost");
}

TEST_F(ChirpServerTest, UnauthenticatedRequestsRefused) {
  start_server();
  Client client = connect_raw();
  auto result = client.stat("/");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, EACCES);
}

TEST_F(ChirpServerTest, OpenWriteReadClose) {
  start_server();
  Client client = connect_client();

  auto fd = client.open("/hello.txt", OpenFlags::parse("wc").value(), 0644);
  ASSERT_TRUE(fd.ok()) << fd.error().to_string();
  std::string data = "tactical storage";
  auto wrote = client.pwrite(fd.value(), data.data(), data.size(), 0);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), data.size());
  ASSERT_TRUE(client.close_fd(fd.value()).ok());

  auto rfd = client.open("/hello.txt", OpenFlags::parse("r").value());
  ASSERT_TRUE(rfd.ok());
  std::string buf(data.size(), '\0');
  auto got = client.pread(rfd.value(), buf.data(), buf.size(), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data.size());
  EXPECT_EQ(buf, data);
  ASSERT_TRUE(client.close_fd(rfd.value()).ok());
}

TEST_F(ChirpServerTest, PreadAtOffsetAndShortRead) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/f", "0123456789").ok());
  auto fd = client.open("/f", OpenFlags::parse("r").value());
  ASSERT_TRUE(fd.ok());
  char buf[32];
  auto n = client.pread(fd.value(), buf, sizeof buf, 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5u);
  EXPECT_EQ(std::string(buf, 5), "56789");
  // Read past EOF yields zero bytes.
  auto eof = client.pread(fd.value(), buf, sizeof buf, 100);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof.value(), 0u);
}

TEST_F(ChirpServerTest, ExclusiveOpenDetectsCollision) {
  // The "exclusive open" feature §5 relies on for DSFS stub creation.
  start_server();
  Client client = connect_client();
  auto first = client.open("/stub", OpenFlags::parse("wcx").value());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(client.close_fd(first.value()).ok());
  auto second = client.open("/stub", OpenFlags::parse("wcx").value());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, EEXIST);
}

TEST_F(ChirpServerTest, StatReportsSizeAndInode) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/s", "abc").ok());
  auto info = client.stat("/s");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 3u);
  EXPECT_FALSE(info.value().is_dir);
  EXPECT_GT(info.value().inode, 0u);

  auto missing = client.stat("/does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ENOENT);
}

TEST_F(ChirpServerTest, FstatMatchesStat) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/g", "0123").ok());
  auto fd = client.open("/g", OpenFlags::parse("r").value());
  ASSERT_TRUE(fd.ok());
  auto by_fd = client.fstat(fd.value());
  auto by_path = client.stat("/g");
  ASSERT_TRUE(by_fd.ok());
  ASSERT_TRUE(by_path.ok());
  EXPECT_EQ(by_fd.value().inode, by_path.value().inode);
  EXPECT_EQ(by_fd.value().size, by_path.value().size);
}

TEST_F(ChirpServerTest, MkdirRenameUnlinkRmdir) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  ASSERT_TRUE(client.putfile("/d/x", "1").ok());
  ASSERT_TRUE(client.rename("/d/x", "/d/y").ok());
  EXPECT_FALSE(client.stat("/d/x").ok());
  EXPECT_TRUE(client.stat("/d/y").ok());
  ASSERT_TRUE(client.unlink("/d/y").ok());
  ASSERT_TRUE(client.rmdir("/d").ok());
  EXPECT_FALSE(client.stat("/d").ok());
}

TEST_F(ChirpServerTest, RmdirFailsOnNonEmptyDirectory) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  ASSERT_TRUE(client.putfile("/d/x", "1").ok());
  auto rc = client.rmdir("/d");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ENOTEMPTY);
}

TEST_F(ChirpServerTest, GetdirListsEntriesAndHidesAclFile) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  ASSERT_TRUE(client.putfile("/d/a", "1").ok());
  ASSERT_TRUE(client.putfile("/d/b", "22").ok());
  auto entries = client.getdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  for (const auto& e : entries.value()) {
    EXPECT_NE(e.name, kAclFileName);
  }
}

TEST_F(ChirpServerTest, GetfilePutfileStreamWholeFiles) {
  start_server();
  Client client = connect_client();
  std::string big(3 * 1000 * 1000, 'q');
  for (size_t i = 0; i < big.size(); i += 7) big[i] = static_cast<char>(i);
  ASSERT_TRUE(client.putfile("/big", big).ok());
  auto got = client.getfile("/big");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), big);
}

TEST_F(ChirpServerTest, TruncateShrinksFile) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/t", "0123456789").ok());
  ASSERT_TRUE(client.truncate("/t", 4).ok());
  auto got = client.getfile("/t");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "0123");
}

TEST_F(ChirpServerTest, PathEscapeAttemptsStayInRoot) {
  // The software chroot of §4: no path may name anything above the export
  // root. Write through an escaping path, then verify the file landed
  // inside the root.
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/../../../escape.txt", "trapped").ok());
  EXPECT_TRUE(std::filesystem::exists(root_ + "/escape.txt"));
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(root_).parent_path() / "escape.txt"));
}

TEST_F(ChirpServerTest, StatfsReportsSpace) {
  start_server();
  Client client = connect_client();
  auto space = client.statfs();
  ASSERT_TRUE(space.ok());
  EXPECT_GT(space.value().first, 0u);
  EXPECT_LE(space.value().second, space.value().first);
}

TEST_F(ChirpServerTest, DisconnectClosesServerSideFds) {
  // §4 failure semantics: "if the client and server become disconnected,
  // the server frees all resources associated with that connection". A new
  // connection cannot use the old fd.
  start_server();
  int64_t old_fd;
  {
    Client client = connect_client();
    auto fd = client.open("/f", OpenFlags::parse("wc").value());
    ASSERT_TRUE(fd.ok());
    old_fd = fd.value();
    client.close();
  }
  Client fresh = connect_client();
  char buf[4];
  auto result = fresh.pread(old_fd, buf, sizeof buf, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, EBADF);
}

TEST_F(ChirpServerTest, SecondAuthAttemptAfterSuccessRefused) {
  // "only one set of credentials may be employed in one session" (§4).
  start_server();
  Client client = connect_client();
  auth::HostnameClientCredential credential;
  auto again = client.authenticate(credential);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, EPERM);
}

TEST_F(ChirpServerTest, ConcurrentClients) {
  start_server();
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; i++) {
    threads.emplace_back([this, i, &failures] {
      auto client = Client::connect(server_->endpoint());
      if (!client.ok()) {
        failures++;
        return;
      }
      auth::HostnameClientCredential credential;
      if (!client.value().authenticate(credential).ok()) {
        failures++;
        return;
      }
      std::string path = "/c" + std::to_string(i);
      std::string data(1000 + i, static_cast<char>('a' + i));
      if (!client.value().putfile(path, data).ok()) failures++;
      auto got = client.value().getfile(path);
      if (!got.ok() || got.value() != data) failures++;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ChirpServerTest, ServesExistingDataWithoutSetup) {
  // Recursive abstraction: "a file server can be used to export an existing
  // filesystem without expensive copies or transformations" (§3).
  std::filesystem::create_directories(root_ + "/preexisting");
  {
    std::ofstream out(root_ + "/preexisting/data.txt");
    out << "already here";
  }
  start_server();
  Client client = connect_client();
  auto got = client.getfile("/preexisting/data.txt");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), "already here");
}

}  // namespace
}  // namespace tss::chirp
