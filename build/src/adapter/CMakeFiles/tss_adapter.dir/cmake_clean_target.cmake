file(REMOVE_RECURSE
  "libtss_adapter.a"
)
