file(REMOVE_RECURSE
  "CMakeFiles/dpfs_pool.dir/dpfs_pool.cpp.o"
  "CMakeFiles/dpfs_pool.dir/dpfs_pool.cpp.o.d"
  "dpfs_pool"
  "dpfs_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
