// Storage backend interface behind a Chirp server.
//
// "Files and directories are stored without transformation in an ordinary
// filesystem on the host machine" (§4). PosixBackend does exactly that under
// an export root with the software chroot applied. The simulator provides a
// second implementation whose contents are synthetic but whose timing comes
// from a disk + buffer-cache model, so the same server session logic runs in
// both worlds.
//
// All paths crossing this interface are canonical virtual paths ("/a/b") —
// sanitization happens before the backend is reached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chirp/protocol.h"
#include "util/result.h"

namespace tss::chirp {

class Backend {
 public:
  virtual ~Backend() = default;

  // Handle-based file I/O. The handle namespace is backend-private; the
  // session layer maps wire fds to handles.
  virtual Result<int> open(const std::string& path, const OpenFlags& flags,
                           uint32_t mode) = 0;
  virtual Result<size_t> pread(int handle, void* data, size_t size,
                               int64_t offset) = 0;
  virtual Result<size_t> pwrite(int handle, const void* data, size_t size,
                                int64_t offset) = 0;
  virtual Result<void> fsync(int handle) = 0;
  virtual Result<void> close(int handle) = 0;
  virtual Result<StatInfo> fstat(int handle) = 0;

  // Host file descriptor behind an open handle, for zero-copy streaming
  // (sendfile) by the transport. The fd stays owned by the backend — a
  // caller that needs it past the next close() must dup it. Backends whose
  // bytes do not live in real files (the simulator) return ENOTSUP and the
  // session stays on the pread path.
  virtual Result<int> stream_fd(int handle) {
    (void)handle;
    return Error(ENOTSUP, "backend has no streamable fd");
  }

  // Namespace operations.
  virtual Result<StatInfo> stat(const std::string& path) = 0;
  virtual Result<void> unlink(const std::string& path) = 0;
  virtual Result<void> rename(const std::string& from,
                              const std::string& to) = 0;
  virtual Result<void> mkdir(const std::string& path, uint32_t mode) = 0;
  virtual Result<void> rmdir(const std::string& path) = 0;
  virtual Result<void> truncate(const std::string& path, uint64_t size) = 0;
  virtual Result<std::vector<DirEntry>> readdir(const std::string& path) = 0;

  // Whole-file convenience used for ACL files and streaming RPCs.
  virtual Result<std::string> read_file(const std::string& path) = 0;
  virtual Result<void> write_file(const std::string& path,
                                  std::string_view data, uint32_t mode) = 0;

  // Space accounting for catalog reports: {total bytes, free bytes}.
  virtual Result<std::pair<uint64_t, uint64_t>> statfs() = 0;
};

}  // namespace tss::chirp
