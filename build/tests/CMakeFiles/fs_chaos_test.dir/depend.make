# Empty dependencies file for fs_chaos_test.
# This may be replaced when dependencies are built.
