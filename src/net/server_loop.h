// Accept loop and execution-engine facade shared by all TSS servers.
//
// The paper's servers are single-binary daemons an ordinary user starts with
// one command. ServerLoop captures the common lifecycle: bind (ephemeral
// ports supported so tests and rapid deployment need no configuration),
// accept, run each connection, and shut down cleanly — on disconnect all
// per-connection state dies with the session, matching Chirp's "server frees
// all resources associated with that connection" failure semantics.
//
// Two execution engines sit behind the same API (see
// docs/ARCHITECTURE-NET.md):
//  - kReactor (default): connections are adopted by a fixed-worker
//    net::EventLoop; thread count is workers + acceptor, independent of the
//    connection count.
//  - kThreadPerConnection: every connection gets a blocking thread — the
//    seed's model, kept for comparison benches and as a fallback. Handler
//    servers (raw-socket callbacks) always run here; session servers
//    (SessionFactory) run on either engine, selected via Limits::mode or the
//    TSS_NET_MODE environment variable ("thread" / "reactor").
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace tss::net {

// Execution engine selection for session-based servers.
enum class Mode {
  kAuto,  // default_mode(): TSS_NET_MODE env override, else kReactor
  kThreadPerConnection,
  kReactor,
};

// Resolves kAuto: "thread" or "reactor" from $TSS_NET_MODE, else kReactor.
Mode default_mode();

class ServerLoop {
 public:
  using Handler = std::function<void(TcpSocket)>;
  // Produces the per-connection session; called once per accepted
  // connection, on the accept thread.
  using SessionFactory = std::function<std::shared_ptr<ReactorSession>()>;

  // Admission control and engine configuration. A stalled or leaking client
  // population must not be able to exhaust the server: beyond
  // `max_connections` live sessions, further connections are refused
  // immediately — a fast, typed failure instead of hanging in the listen
  // backlog.
  struct Limits {
    size_t max_connections = 0;  // 0 = unlimited
    // Bytes written (best-effort) to a refused connection before it is
    // closed. ServerLoop is protocol-agnostic, so the owning server supplies
    // its own wire-format refusal (e.g. a Chirp "error EBUSY ..." line);
    // empty = close silently and the client observes bare EOF.
    std::string reject_notice;
    // Incremented once per refused connection, if set. Not owned.
    obs::Counter* rejected_counter = nullptr;
    // Execution engine for session servers; Handler servers ignore this and
    // always run thread-per-connection.
    Mode mode = Mode::kAuto;
    // Reactor sizing; 0 = EventLoop::default_workers().
    int reactor_workers = 0;
    // Acceptor threads / listeners. With SO_REUSEPORT, each acceptor owns
    // its own listener on the shared port and the kernel load-balances
    // accepts across them; where a second bind fails, the loop falls back
    // to a single listener (least-loaded adopt still spreads connections
    // across reactor workers). <= 1 = one acceptor.
    int acceptors = 1;
    // Force the poll() backend (portability testing).
    bool force_poll = false;
    // Registry for the net.loop.* metrics; null = obs::Registry::global().
    obs::Registry* metrics = nullptr;
  };

  ServerLoop() = default;
  ~ServerLoop() { stop(); }
  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  // Binds and starts the accept thread, running `handler(socket)` on a
  // dedicated thread per connection (always thread-per-connection).
  Result<void> start(const std::string& host, uint16_t port, Handler handler,
                     Limits limits);
  Result<void> start(const std::string& host, uint16_t port,
                     Handler handler) {
    return start(host, port, std::move(handler), Limits());
  }

  // Binds and starts the accept thread, running one ReactorSession per
  // connection on the engine selected by limits.mode.
  Result<void> start(const std::string& host, uint16_t port,
                     SessionFactory factory, Limits limits);

  // Stops accepting, tears down live connections (sessions observe
  // on_close / handlers observe EOF), and joins every thread.
  void stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  // The engine connections actually run on (resolved from Limits::mode).
  Mode mode() const { return mode_; }
  // Number of connections accepted over the loop's lifetime (for tests).
  uint64_t connections_accepted() const { return accepted_.load(); }
  // Number of connections refused by the max_connections cap.
  uint64_t connections_rejected() const { return rejected_.load(); }
  // Number of live connections (either engine).
  size_t active_connections() const { return active_.load(); }
  // Transient accept() failures survived (EMFILE and friends); mirrors the
  // net.accept.error counter.
  uint64_t accept_errors() const { return accept_errors_.load(); }
  // Listeners actually bound (< Limits::acceptors when SO_REUSEPORT sharding
  // was unavailable and the loop fell back).
  int acceptors() const { return static_cast<int>(listeners_.size()); }

 private:
  struct Connection {
    std::thread thread;
    int dup_fd = -1;  // dup of the connection fd, used to shutdown() on stop
  };

  Result<void> start_common(const std::string& host, uint16_t port,
                            Limits limits);
  void start_acceptors();
  void accept_loop(size_t idx);
  // One accepted socket through admission control and onto its engine.
  void dispatch(TcpSocket sock);
  void spawn_thread(TcpSocket sock);
  // Called by a handler thread as its final act: closes the dup_fd, detaches
  // the (self) thread, and drops the Connection entry — the completion
  // signal that replaces lazy reaping on the next accept.
  void finish_connection(uint64_t id);

  std::vector<TcpListener> listeners_;
  Handler handler_;
  SessionFactory factory_;
  Limits limits_;
  Mode mode_ = Mode::kThreadPerConnection;
  std::unique_ptr<EventLoop> loop_;  // reactor engine, when selected
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> accept_errors_{0};
  obs::Counter* accept_error_counter_ = nullptr;
  std::vector<std::thread> accept_threads_;
  std::mutex mutex_;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, Connection> conns_;
};

}  // namespace tss::net
