// DPFS pool: aggregate several borrowed disks into one private filesystem.
//
// The §5 DPFS scenario: "a user can employ the aggregate storage of
// multiple file servers in one image", with the directory tree in a local
// directory the user owns and the file bodies scattered over the pool.
// This example:
//   1. starts five Chirp servers (five "idle disks" around the lab);
//   2. builds a DPFS across them and fills a directory tree;
//   3. shows the stub indirection (where each file actually lives);
//   4. renames a whole subtree — name-only, no data moves;
//   5. kills one server and shows failure coherence: the tree stays
//      navigable, only that server's files go dark;
//   6. switches the same tree to DSFS form by moving the metadata onto one
//      of the servers — the one-line recursive-abstraction change.
//
// Run:  ./dpfs_pool    (exits 0 on success)
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/dist.h"
#include "fs/local.h"

using namespace tss;

namespace {
#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _r = (expr);                                              \
    if (!_r.ok()) {                                                \
      std::printf("FAILED: %s: %s\n", #expr,                       \
                  _r.error().to_string().c_str());                 \
      return 1;                                                    \
    }                                                              \
  } while (0)
}  // namespace

int main() {
  std::string base = "/tmp/tss-dpfs-" + std::to_string(::getpid());

  std::printf("==> starting 5 Chirp servers (idle disks around the lab)\n");
  std::vector<std::unique_ptr<chirp::Server>> servers;
  std::vector<std::unique_ptr<fs::CfsFs>> mounts;
  std::map<std::string, fs::FileSystem*> pool;
  for (int i = 0; i < 5; i++) {
    std::string root = base + "/disk" + std::to_string(i);
    std::filesystem::create_directories(root);
    chirp::ServerOptions options;
    options.owner = "unix:labmate" + std::to_string(i);
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers.push_back(std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root),
        std::move(auth)));
    CHECK_OK(servers.back()->start());

    auto credential = std::make_shared<auth::HostnameClientCredential>();
    fs::CfsFs::Options cfs_options;
    cfs_options.retry.max_attempts = 2;
    cfs_options.retry.base_delay = 10 * kMillisecond;
    mounts.push_back(std::make_unique<fs::CfsFs>(
        fs::chirp_connector(servers.back()->endpoint(), {credential}),
        cfs_options));
    pool["disk" + std::to_string(i)] = mounts.back().get();
  }

  std::printf("==> building a DPFS: metadata local, data across the pool\n");
  std::string metadata_dir = base + "/my-directory-tree";
  std::filesystem::create_directories(metadata_dir);
  fs::LocalFs metadata(metadata_dir);
  fs::DistFs::Options dist_options;
  dist_options.volume = "/mydpfs";
  dist_options.name_seed = 2005;
  fs::DistFs dpfs(&metadata, pool, dist_options);
  CHECK_OK(dpfs.format());

  std::printf("==> filling a paper-like tree with 20 files\n");
  CHECK_OK(dpfs.mkdir("/figures"));
  CHECK_OK(dpfs.write_file("/paper.txt", std::string(8000, 'p')));
  for (int i = 0; i < 19; i++) {
    std::string name = "/figures/fig" + std::to_string(i) + ".eps";
    CHECK_OK(dpfs.write_file(name, std::string(3000 + i * 100, 'f')));
  }

  std::printf("==> where the bytes actually live (stub indirection):\n");
  auto stub = dpfs.locate("/paper.txt");
  CHECK_OK(stub);
  std::printf("    /paper.txt -> %s:%s\n", stub.value().server.c_str(),
              stub.value().data_path.c_str());
  std::map<std::string, int> spread;
  auto figures = dpfs.readdir("/figures");
  CHECK_OK(figures);
  for (const auto& entry : figures.value()) {
    auto location = dpfs.locate("/figures/" + entry.name);
    CHECK_OK(location);
    spread[location.value().server]++;
  }
  for (const auto& [server, count] : spread) {
    std::printf("    %s holds %d of the figure files\n", server.c_str(),
                count);
  }

  std::printf("==> renaming the whole tree: name-only, no data moves\n");
  CHECK_OK(dpfs.rename("/figures", "/camera-ready"));
  auto moved = dpfs.readdir("/camera-ready");
  CHECK_OK(moved);
  std::printf("    /camera-ready now lists %zu entries\n",
              moved.value().size());

  std::printf("==> failure coherence: disk2's owner pulls the plug\n");
  servers[2]->stop();
  int readable = 0, dark = 0;
  for (const auto& entry : moved.value()) {
    auto data = dpfs.read_file("/camera-ready/" + entry.name);
    if (data.ok()) {
      readable++;
    } else {
      dark++;
    }
  }
  auto listing = dpfs.readdir("/camera-ready");
  CHECK_OK(listing);  // the tree itself stays fully navigable
  std::printf(
      "    tree still lists %zu entries; %d files readable, %d dark "
      "(on disk2)\n",
      listing.value().size(), readable, dark);
  if (dark == 0) {
    std::printf("FAILED: expected some files on the dead server\n");
    return 1;
  }

  std::printf(
      "==> the recursive-abstraction move: same tree as a DSFS, metadata\n"
      "    hosted on disk0 instead of the local directory\n");
  fs::DistFs::Options dsfs_options;
  dsfs_options.volume = "/shared-volume";
  dsfs_options.name_seed = 2006;
  std::map<std::string, fs::FileSystem*> healthy = pool;
  healthy.erase("disk2");
  fs::DistFs dsfs(mounts[0].get(), healthy, dsfs_options);  // <- the one line
  CHECK_OK(dsfs.format());
  CHECK_OK(dsfs.mkdir("/team"));
  CHECK_OK(dsfs.write_file("/team/shared.txt", "visible to every client"));
  std::printf("    DSFS write through server-hosted metadata: ok\n");

  std::printf("==> dpfs pool example complete\n");
  for (auto& server : servers) server->stop();
  std::filesystem::remove_all(base);
  return 0;
}
