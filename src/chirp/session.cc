#include "chirp/session.h"

#include "chirp/alloc.h"
#include "chirp/quota.h"
#include "util/checksum.h"
#include "util/logging.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::chirp {

bool names_acl_file(const std::string& canonical_path) {
  return path::basename(canonical_path) == kAclFileName;
}

bool names_reserved(const std::string& canonical_path) {
  std::string base = path::basename(canonical_path);
  return base == kAclFileName || starts_with(base, kAllocJournalName);
}

SessionCore::SessionCore(const ServerConfig& config, Backend& backend,
                         auth::PeerInfo peer)
    : config_(config),
      backend_(backend),
      peer_(std::move(peer)),
      clock_(config.clock ? config.clock : &RealClock::instance()) {
  if (config_.metrics) {
    for (int i = 0; i < kOpCount; i++) {
      op_latency_[i] = config_.metrics->histogram(
          std::string("chirp.server.latency.") + op_name(static_cast<Op>(i)));
    }
    requests_ = config_.metrics->counter("chirp.server.requests");
    errors_ = config_.metrics->counter("chirp.server.errors");
    bytes_in_ = config_.metrics->counter("chirp.server.bytes_in");
    bytes_out_ = config_.metrics->counter("chirp.server.bytes_out");
    integrity_mismatch_ =
        config_.metrics->counter("chirp.server.integrity.mismatch");
    redirects_ = config_.metrics->counter("chirp.server.redirects");
  }
}

void SessionCore::record_op(Op op, Nanos start, uint64_t bytes_in,
                            uint64_t bytes_out, int err) {
  if (!config_.metrics) return;
  Nanos duration = clock_->now() - start;
  op_latency_[static_cast<int>(op)]->record(duration);
  requests_->add();
  if (err != 0) errors_->add();
  if (bytes_in > 0) bytes_in_->add(bytes_in);
  if (bytes_out > 0) bytes_out_->add(bytes_out);
  config_.metrics->record_span(op_name(op),
                               subject_ ? subject_->to_string() : "-",
                               bytes_in + bytes_out, err, start, duration);
}

SessionCore::~SessionCore() { close_all(); }

void SessionCore::close_all() {
  for (auto& [fd, file] : fds_) {
    (void)backend_.close(file.backend_handle);
  }
  fds_.clear();
}

Result<auth::Subject> SessionCore::authenticate(const std::string& method,
                                                const std::string& arg,
                                                auth::ChallengeIo& io) {
  if (authenticated()) {
    return Error(EPERM, "already authenticated; one credential per session");
  }
  if (!config_.auth) {
    return Error(ENOSYS, "no authentication methods enabled");
  }
  auto subject = config_.auth->attempt(method, peer_, arg, io);
  if (subject.ok()) {
    subject_ = subject.value();
    resolve_subject_metrics();
    TSS_DEBUG("chirp") << "authenticated " << subject_->to_string();
  }
  return subject;
}

void SessionCore::resolve_subject_metrics() {
  if (!config_.metrics || !subject_) return;
  std::string base = "tenant.subject." + url_encode(subject_->to_string());
  subject_requests_ = config_.metrics->counter(base + ".requests");
  subject_bytes_ = config_.metrics->counter(base + ".bytes");
  subject_rejected_ = config_.metrics->counter(base + ".rejected");
}

std::optional<Response> SessionCore::quota_admit(Op op) {
  if (op == Op::kVersion || op == Op::kAuth) return std::nullopt;
  if (config_.quotas == nullptr || !authenticated() || is_owner()) {
    return std::nullopt;
  }
  auto rc = config_.quotas->admit(subject_->to_string());
  if (rc.ok()) return std::nullopt;
  return Response::failure(rc.error());
}

void SessionCore::quota_account(Op op, uint64_t bytes, bool refused) {
  if (op == Op::kVersion || op == Op::kAuth || !authenticated()) return;
  if (subject_requests_ != nullptr) subject_requests_->add(1);
  if (refused) {
    if (subject_rejected_ != nullptr) subject_rejected_->add(1);
    return;  // a refusal does no work, so it costs no tokens
  }
  if (subject_bytes_ != nullptr && bytes > 0) subject_bytes_->add(bytes);
  if (config_.quotas != nullptr && !is_owner()) {
    config_.quotas->charge(subject_->to_string(), 1, bytes);
  }
}

bool SessionCore::is_owner() const {
  return authenticated() && subject_->to_string() == config_.owner;
}

Result<int> SessionCore::stream_open_read(const std::string& p,
                                          uint64_t* size_out) {
  std::string canonical = path::sanitize(p);
  if (!authenticated()) return Error(EACCES, "not authenticated");
  if (names_reserved(canonical)) return Error(EACCES, "reserved name");
  if (!permits(path::dirname(canonical), acl::kRead)) {
    return Error(EACCES, "permission denied");
  }
  TSS_ASSIGN_OR_RETURN(int handle,
                       backend_.open(canonical, OpenFlags::parse("r").value(),
                                     0));
  auto info = backend_.fstat(handle);
  if (!info.ok()) {
    (void)backend_.close(handle);
    return std::move(info).take_error();
  }
  if (info.value().is_dir) {
    (void)backend_.close(handle);
    return Error(EISDIR, "is a directory: " + canonical);
  }
  *size_out = info.value().size;
  return handle;
}

Result<int> SessionCore::stream_open_write(const std::string& p,
                                           uint32_t mode) {
  std::string canonical = path::sanitize(p);
  if (!authenticated()) return Error(EACCES, "not authenticated");
  if (names_reserved(canonical)) return Error(EACCES, "reserved name");
  if (!permits(path::dirname(canonical), acl::kWrite)) {
    return Error(EACCES, "permission denied");
  }
  return backend_.open(canonical, OpenFlags::parse("wct").value(), mode);
}

void SessionCore::stream_close(int backend_handle) {
  (void)backend_.close(backend_handle);
}

acl::Acl SessionCore::effective_acl(const std::string& dir) {
  std::string current = dir;
  while (true) {
    auto text = backend_.read_file(path::join(current, kAclFileName));
    if (text.ok()) {
      auto parsed = acl::Acl::parse(text.value());
      if (parsed.ok()) return parsed.value();
      TSS_WARN("chirp") << "corrupt ACL in " << current << ": "
                        << parsed.error().to_string();
      return acl::Acl();  // corrupt ACL fails closed
    }
    if (current == "/") break;
    current = path::dirname(current);
  }
  return config_.root_acl;
}

bool SessionCore::permits(const std::string& dir, acl::Rights rights) {
  if (!authenticated()) return false;
  if (is_owner()) return true;
  return effective_acl(dir).check(subject_->to_string(), rights);
}

Response SessionCore::handle(const Request& raw, Payload payload,
                             std::string* response_payload) {
  Nanos start = clock_->now();
  size_t out_before = response_payload ? response_payload->size() : 0;
  Response resp;
  bool refused = false;
  if (auto quota = quota_admit(raw.op)) {
    resp = *quota;
    refused = true;
  } else {
    resp = dispatch(raw, payload, response_payload);
  }
  uint64_t out_bytes =
      response_payload ? response_payload->size() - out_before : 0;
  quota_account(raw.op, payload.size + out_bytes, refused);
  if (config_.metrics) {
    record_op(raw.op, start, payload.size, out_bytes, resp.err);
  }
  return resp;
}

Response SessionCore::dispatch(const Request& raw, Payload payload,
                               std::string* response_payload) {
  // Software chroot: every client-supplied path is clamped to the export
  // root before anything else looks at it.
  Request r = raw;
  if (!r.path.empty()) r.path = path::sanitize(r.path);
  if (!r.path2.empty()) r.path2 = path::sanitize(r.path2);
  if (r.op == Op::kVersion) {
    Response resp;
    resp.args.push_back(std::to_string(kProtocolVersion));
    // Echo back the offered capabilities we support; each echo arms the
    // feature for the rest of the session.
    for (const std::string& cap : r.caps) {
      if (cap == kCapChecksum) {
        checksum_ = true;
        resp.args.push_back(cap);
      } else if (cap == kCapRedirect && config_.redirect != nullptr) {
        redirect_ = true;
        resp.args.push_back(cap);
      } else if (cap == kCapAlloc && config_.alloc != nullptr) {
        alloc_ = true;
        resp.args.push_back(cap);
      }
    }
    return resp;
  }
  if (!authenticated()) {
    return Response::failure(EACCES, "not authenticated");
  }
  // Reserved-name guard: the ACL file is only reachable via getacl/setacl,
  // and the allocation journal not at all.
  switch (r.op) {
    case Op::kOpen:
    case Op::kStat:
    case Op::kUnlink:
    case Op::kGetfile:
    case Op::kPutfile:
    case Op::kTruncate:
      if (names_reserved(r.path)) {
        return Response::failure(EACCES, "reserved name");
      }
      break;
    case Op::kRename:
      if (names_reserved(r.path) || names_reserved(r.path2)) {
        return Response::failure(EACCES, "reserved name");
      }
      break;
    default:
      break;
  }

  switch (r.op) {
    case Op::kOpen:
      return do_open(r);
    case Op::kPread:
      return do_pread(r, response_payload);
    case Op::kPwrite:
      return do_pwrite(r, payload);
    case Op::kFsync: {
      auto it = fds_.find(r.fd);
      if (it == fds_.end()) return Response::failure(EBADF, "bad fd");
      auto rc = backend_.fsync(it->second.backend_handle);
      if (!rc.ok()) return Response::failure(rc.error());
      return Response{};
    }
    case Op::kClose: {
      auto it = fds_.find(r.fd);
      if (it == fds_.end()) return Response::failure(EBADF, "bad fd");
      (void)backend_.close(it->second.backend_handle);
      fds_.erase(it);
      return Response{};
    }
    case Op::kStat:
      return do_stat(r);
    case Op::kFstat:
      return do_fstat(r);
    case Op::kUnlink:
      return do_unlink(r);
    case Op::kRename:
      return do_rename(r);
    case Op::kMkdir:
      return do_mkdir(r);
    case Op::kRmdir:
      return do_rmdir(r);
    case Op::kGetdir:
      return do_getdir(r, response_payload);
    case Op::kGetfile:
      return do_getfile(r, response_payload);
    case Op::kPutfile:
      return do_putfile(r, payload);
    case Op::kGetacl:
      return do_getacl(r, response_payload);
    case Op::kSetacl:
      return do_setacl(r);
    case Op::kWhoami: {
      Response resp;
      resp.args.push_back(url_encode(subject_->to_string()));
      return resp;
    }
    case Op::kStatfs:
      return do_statfs();
    case Op::kTruncate:
      return do_truncate(r);
    case Op::kStats:
      return do_stats(response_payload);
    case Op::kMkalloc:
      return do_mkalloc(r);
    case Op::kLsalloc:
      return do_lsalloc(r);
    case Op::kVersion:
    case Op::kAuth:
      break;
  }
  return Response::failure(ENOSYS, "unhandled rpc");
}

Response SessionCore::do_open(const Request& r) {
  std::string dir = path::dirname(r.path);
  acl::Rights needed = acl::kNoRights;
  if (r.flags.read) needed |= acl::kRead;
  if (r.flags.write || r.flags.create || r.flags.truncate ||
      r.flags.append) {
    needed |= acl::kWrite;
  }
  if (needed == acl::kNoRights) needed = acl::kRead;
  if (!permits(dir, needed)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto handle = backend_.open(r.path, r.flags, r.mode);
  if (!handle.ok()) return Response::failure(handle.error());
  int64_t fd = next_fd_++;
  fds_[fd] = OpenFile{handle.value(), r.path};
  Response resp;
  resp.args.push_back(std::to_string(fd));
  return resp;
}

Response SessionCore::do_pread(const Request& r, std::string* out) {
  auto it = fds_.find(r.fd);
  if (it == fds_.end()) return Response::failure(EBADF, "bad fd");
  size_t want = static_cast<size_t>(r.length);
  size_t old = out->size();
  out->resize(old + want);
  auto n = backend_.pread(it->second.backend_handle, out->data() + old, want,
                          r.offset);
  if (!n.ok()) {
    out->resize(old);
    return Response::failure(n.error());
  }
  out->resize(old + n.value());
  Response resp;
  resp.args.push_back(std::to_string(n.value()));
  if (checksum_) {
    resp.args.push_back(hash_to_hex(fnv1a64(out->data() + old, n.value())));
  }
  resp.payload_size = n.value();
  return resp;
}

Response SessionCore::do_pwrite(const Request& r, Payload payload) {
  auto it = fds_.find(r.fd);
  if (it == fds_.end()) return Response::failure(EBADF, "bad fd");
  // Verify before writing: a mangled payload must never reach the disk.
  // (Synthetic size-only payloads carry no bytes to digest.)
  if (r.has_checksum && payload.data != nullptr &&
      fnv1a64(payload.data, static_cast<size_t>(payload.size)) != r.checksum) {
    if (integrity_mismatch_) integrity_mismatch_->add();
    return Response::failure(EBADMSG, "pwrite checksum mismatch");
  }
  auto n = backend_.pwrite(it->second.backend_handle, payload.data,
                           static_cast<size_t>(payload.size), r.offset);
  if (!n.ok()) return Response::failure(n.error());
  Response resp;
  resp.args.push_back(std::to_string(n.value()));
  return resp;
}

Response SessionCore::do_stat(const Request& r) {
  if (!permits(path::dirname(r.path), acl::kList)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto info = backend_.stat(r.path);
  if (!info.ok()) return Response::failure(info.error());
  Response resp;
  resp.args = split_words(info.value().encode());
  return resp;
}

Response SessionCore::do_fstat(const Request& r) {
  auto it = fds_.find(r.fd);
  if (it == fds_.end()) return Response::failure(EBADF, "bad fd");
  auto info = backend_.fstat(it->second.backend_handle);
  if (!info.ok()) return Response::failure(info.error());
  Response resp;
  resp.args = split_words(info.value().encode());
  return resp;
}

Response SessionCore::do_unlink(const Request& r) {
  if (!permits(path::dirname(r.path), acl::kDelete)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto rc = backend_.unlink(r.path);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_rename(const Request& r) {
  if (!permits(path::dirname(r.path), acl::kDelete) ||
      !permits(path::dirname(r.path2), acl::kWrite)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto rc = backend_.rename(r.path, r.path2);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_mkdir(const Request& r) {
  if (r.path == "/") return Response::failure(EEXIST, "root exists");
  std::string parent = path::dirname(r.path);
  bool inherit;
  acl::Rights fresh_rights = acl::kNoRights;
  if (is_owner() || permits(parent, acl::kWrite)) {
    inherit = true;
  } else {
    // Reserve right: mkdir allowed, fresh ACL grants the caller exactly the
    // parent entry's parenthesized rights (§4's /backup example).
    auto reserve =
        effective_acl(parent).reserve_rights_for(subject_->to_string());
    if (!reserve.has_value()) {
      return Response::failure(EACCES, "permission denied");
    }
    inherit = false;
    fresh_rights = *reserve;
  }
  auto rc = backend_.mkdir(r.path, r.mode);
  if (!rc.ok()) return Response::failure(rc.error());
  acl::Acl new_acl = inherit
                         ? effective_acl(parent)
                         : acl::Acl::fresh_for(subject_->to_string(),
                                               fresh_rights);
  auto wrote = backend_.write_file(path::join(r.path, kAclFileName),
                                   new_acl.serialize(), 0644);
  if (!wrote.ok()) {
    // Roll back so we never leave a directory with no enforceable policy.
    (void)backend_.rmdir(r.path);
    return Response::failure(wrote.error());
  }
  return Response{};
}

Response SessionCore::do_rmdir(const Request& r) {
  if (!permits(path::dirname(r.path), acl::kDelete)) {
    return Response::failure(EACCES, "permission denied");
  }
  // The directory's own ACL file does not count as content.
  std::string acl_path = path::join(r.path, kAclFileName);
  auto listing = backend_.readdir(r.path);
  if (listing.ok()) {
    bool only_acl = true;
    for (const DirEntry& e : listing.value()) {
      if (e.name != kAclFileName) {
        only_acl = false;
        break;
      }
    }
    if (only_acl) (void)backend_.unlink(acl_path);
  }
  auto rc = backend_.rmdir(r.path);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_getdir(const Request& r, std::string* out) {
  if (!permits(r.path, acl::kList)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto entries = backend_.readdir(r.path);
  if (!entries.ok()) return Response::failure(entries.error());
  uint64_t count = 0;
  std::string body;
  for (const DirEntry& e : entries.value()) {
    if (e.name == kAclFileName || starts_with(e.name, kAllocJournalName)) {
      continue;
    }
    body += encode_dirent(e);
    body += '\n';
    count++;
  }
  out->append(body);
  Response resp;
  resp.args.push_back(std::to_string(count));
  resp.payload_size = body.size();
  return resp;
}

std::optional<Response> SessionCore::getfile_redirect(const std::string& p) {
  if (!redirect_ || config_.redirect == nullptr || !authenticated()) {
    return std::nullopt;
  }
  auto hint = config_.redirect->consider(path::sanitize(p));
  if (!hint) return std::nullopt;
  if (redirects_) redirects_->add();
  Response resp;
  resp.redirect = *hint;
  return resp;
}

Response SessionCore::do_getfile(const Request& r, std::string* out) {
  if (!permits(path::dirname(r.path), acl::kRead)) {
    return Response::failure(EACCES, "permission denied");
  }
  if (auto deflect = getfile_redirect(r.path)) return *deflect;
  auto data = backend_.read_file(r.path);
  if (!data.ok()) return Response::failure(data.error());
  Response resp;
  resp.args.push_back(std::to_string(data.value().size()));
  resp.payload_size = data.value().size();
  out->append(data.value());
  return resp;
}

Response SessionCore::do_putfile(const Request& r, Payload payload) {
  if (!permits(path::dirname(r.path), acl::kWrite)) {
    return Response::failure(EACCES, "permission denied");
  }
  // Stream through open/pwrite/close rather than write_file so that
  // backends which accept size-only (synthetic) payloads see the true
  // length; payload.data is always real on the TCP path.
  OpenFlags flags;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  auto handle = backend_.open(r.path, flags, r.mode);
  if (!handle.ok()) return Response::failure(handle.error());
  auto n = backend_.pwrite(handle.value(), payload.data,
                           static_cast<size_t>(payload.size), 0);
  (void)backend_.close(handle.value());
  if (!n.ok()) return Response::failure(n.error());
  if (n.value() != payload.size) {
    return Response::failure(EIO, "short putfile write");
  }
  return Response{};
}

Response SessionCore::do_getacl(const Request& r, std::string* out) {
  // getacl targets a directory; a file path is resolved to its directory.
  std::string dir = r.path;
  auto info = backend_.stat(r.path);
  if (info.ok() && !info.value().is_dir) dir = path::dirname(r.path);
  if (!permits(dir, acl::kList)) {
    return Response::failure(EACCES, "permission denied");
  }
  std::string text = effective_acl(dir).serialize();
  Response resp;
  resp.args.push_back(std::to_string(text.size()));
  resp.payload_size = text.size();
  out->append(text);
  return resp;
}

Response SessionCore::do_setacl(const Request& r) {
  if (!permits(r.path, acl::kAdmin)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto info = backend_.stat(r.path);
  if (!info.ok()) return Response::failure(info.error());
  if (!info.value().is_dir) {
    return Response::failure(ENOTDIR, "setacl target must be a directory");
  }
  auto parsed = acl::parse_rights(r.acl_rights);
  if (!parsed.ok()) return Response::failure(parsed.error());
  acl::Acl acl = effective_acl(r.path);
  acl.set(r.acl_subject, parsed.value().rights, parsed.value().reserve);
  auto rc = backend_.write_file(path::join(r.path, kAclFileName),
                                acl.serialize(), 0644);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_truncate(const Request& r) {
  if (!permits(path::dirname(r.path), acl::kWrite)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto rc = backend_.truncate(r.path, r.length);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_stats(std::string* out) {
  // Any authenticated subject may read the metrics snapshot — counters and
  // latencies carry no file data. With no registry configured the snapshot
  // is simply empty.
  std::string text =
      config_.metrics ? config_.metrics->render_text() : std::string();
  Response resp;
  resp.args.push_back(std::to_string(text.size()));
  resp.payload_size = text.size();
  out->append(text);
  return resp;
}

Response SessionCore::do_mkalloc(const Request& r) {
  // Like an unknown RPC on an old server: without the negotiated capability
  // (or a tracker at all) the op simply does not exist.
  if (!alloc_ || config_.alloc == nullptr) {
    return Response::failure(ENOSYS, "alloc capability not negotiated");
  }
  auto info = backend_.stat(r.path);
  if (!info.ok()) return Response::failure(info.error());
  if (!info.value().is_dir) {
    return Response::failure(ENOTDIR, "mkalloc target must be a directory");
  }
  // Carving out space is a policy change on the directory, like setacl.
  if (!permits(r.path, acl::kAdmin)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto rc = config_.alloc->mkalloc(r.path, r.length);
  if (!rc.ok()) return Response::failure(rc.error());
  return Response{};
}

Response SessionCore::do_lsalloc(const Request& r) {
  if (!alloc_ || config_.alloc == nullptr) {
    return Response::failure(ENOSYS, "alloc capability not negotiated");
  }
  if (!permits(path::dirname(r.path), acl::kList)) {
    return Response::failure(EACCES, "permission denied");
  }
  auto info = config_.alloc->lsalloc(r.path);
  if (!info.ok()) return Response::failure(info.error());
  Response resp;
  resp.args.push_back(url_encode(info.value().root));
  resp.args.push_back(std::to_string(info.value().limit));
  resp.args.push_back(std::to_string(info.value().inuse));
  return resp;
}

Response SessionCore::do_statfs() {
  auto space = backend_.statfs();
  if (!space.ok()) return Response::failure(space.error());
  Response resp;
  resp.args.push_back(std::to_string(space.value().first));
  resp.args.push_back(std::to_string(space.value().second));
  return resp;
}

}  // namespace tss::chirp
