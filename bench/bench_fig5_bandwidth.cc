// Figure 5 — "Single Client Bandwidth".
//
// Paper: "The maximum bandwidth achieved writing 16MB in various block
// sizes", comparing local Unix writes, the same writes through Parrot, a
// Parrot+CFS over gigabit Ethernet, and Unix+NFS. Expected shape:
//   Unix local (798 MB/s there)  >>  Parrot local (431 MB/s; one extra copy
//   + trap per call)  >>  network ceiling  >=  Parrot+CFS (~80 of 128 MB/s)
//   >>  Unix+NFS (~10 MB/s, pinned by 4 KB request-response RPCs).
//
// The two local rows are *real measurements* (a self-timing copy worker,
// run natively and under the ptrace tracer). The two network rows run over
// the simulated 1 Gb/s cluster: Chirp with one pwrite RPC per application
// block, NFS with the 4 KB transfer ceiling.
#include "bench/common.h"
#include "bench/worker_util.h"
#include "sim/chirp_sim.h"

namespace tss::bench {
namespace {

using sim::Cluster;
using sim::Engine;
using sim::SimChirpClient;
using sim::SimChirpServer;
using sim::Task;

constexpr uint64_t kTotalBytes = 16 << 20;

// Simulated Chirp write: one pwrite RPC per block on one connection.
Task<void> cfs_copy(Engine& engine, SimChirpClient& client, uint64_t block,
                    double* mb_per_sec) {
  if (!(co_await client.connect()).ok()) co_return;
  auto fd = co_await client.open("/copy", chirp::OpenFlags::parse("wct").value(),
                                 0644);
  if (!fd.ok()) co_return;
  Nanos t0 = engine.now();
  uint64_t offset = 0;
  while (offset < kTotalBytes) {
    uint64_t n = std::min(block, kTotalBytes - offset);
    auto wrote = co_await client.pwrite(fd.value(), n, (int64_t)offset);
    if (!wrote.ok()) co_return;
    offset += n;
  }
  double seconds = double(engine.now() - t0) / 1e9;
  *mb_per_sec = double(kTotalBytes) / 1e6 / seconds;
}

// Simulated NFS write: request-response RPCs capped at 4 KB each.
Task<void> nfs_copy(Engine& engine, Cluster& cluster, int client, int server,
                    uint64_t block, double* mb_per_sec) {
  constexpr uint64_t kNfsMax = 4096;
  constexpr Nanos kServerCpu = 25 * kMicrosecond;
  Nanos t0 = engine.now();
  uint64_t offset = 0;
  while (offset < kTotalBytes) {
    uint64_t app_block = std::min(block, kTotalBytes - offset);
    uint64_t sent = 0;
    while (sent < app_block) {
      uint64_t n = std::min(kNfsMax, app_block - sent);
      co_await cluster.transfer(client, server, 96 + n);
      co_await engine.sleep_for(kServerCpu);
      co_await cluster.transfer(server, client, 96);
      sent += n;
    }
    offset += app_block;
  }
  double seconds = double(engine.now() - t0) / 1e9;
  *mb_per_sec = double(kTotalBytes) / 1e6 / seconds;
}

double run_cfs(uint64_t block) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  SimChirpServer server(cluster, SimChirpServer::Options{});
  int node = cluster.add_node();
  SimChirpClient client(cluster, node, server, "client");
  double result = 0;
  spawn(engine, cfs_copy(engine, client, block, &result));
  engine.run();
  return result;
}

double run_nfs(uint64_t block) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  int server = cluster.add_node();
  int client = cluster.add_node();
  double result = 0;
  spawn(engine, nfs_copy(engine, cluster, client, server, block, &result));
  engine.run();
  return result;
}

}  // namespace
}  // namespace tss::bench

int main(int, char** argv) {
  using namespace tss::bench;

  std::string worker = find_worker(argv[0]);
  // Prefer a memory-backed target so the local rows measure the software
  // path, not this host's storage.
  std::string scratch_dir = "/dev/shm";
  if (::access(scratch_dir.c_str(), W_OK) != 0) scratch_dir = "/tmp";
  std::string scratch =
      scratch_dir + "/tss-fig5-" + std::to_string(::getpid());

  const uint64_t blocks[] = {1024,      4096,      16384,    65536,
                             262144,    1 << 20,   4 << 20,  8 << 20};

  print_header(
      "Figure 5: single-client bandwidth writing 16 MB vs block size",
      "unix/parrot rows: real measurement on this host (memory-backed "
      "file).\ncfs/nfs rows: simulated 1 Gb/s Ethernet (128 MB/s raw).\n"
      "Paper shape: unix >> parrot >> wire limit >= parrot+cfs >> unix+nfs.");
  print_row({"block", "unix MB/s", "parrot MB/s", "parrot+cfs", "unix+nfs"});

  bool traced_ok = tss::parrot::tracer_supported();
  for (uint64_t block : blocks) {
    auto native = run_worker(
        worker,
        {"copy", std::to_string(kTotalBytes), scratch, std::to_string(block)},
        /*traced=*/false, "elapsed_ns");
    std::string native_s = "error", traced_s = "n/a";
    if (native.ok()) {
      native_s = fmt_double(double(kTotalBytes) / 1e6 /
                            (double(native.value()) / 1e9));
    }
    if (traced_ok) {
      auto traced = run_worker(worker,
                               {"copy", std::to_string(kTotalBytes), scratch,
                                std::to_string(block)},
                               /*traced=*/true, "elapsed_ns");
      if (traced.ok()) {
        traced_s = fmt_double(double(kTotalBytes) / 1e6 /
                              (double(traced.value()) / 1e9));
      } else {
        traced_s = "error";
      }
    }

    std::string label = block >= (1 << 20)
                            ? std::to_string(block >> 20) + "MB"
                            : std::to_string(block >> 10) + "KB";
    print_row({label, native_s, traced_s, fmt_double(run_cfs(block)),
               fmt_double(run_nfs(block))});
  }
  ::unlink(scratch.c_str());
  return 0;
}
