// Regression guards for the experiment harnesses: small, fast versions of
// the Figure 6-8 configurations asserting that the *shapes* the paper
// reports still emerge from the model. If a change to the simulator or the
// protocol breaks a crossover, these fail before anyone re-reads the bench
// output.
#include <gtest/gtest.h>

#include "bench/common.h"

namespace tss::bench {
namespace {

DsfsScalingParams small_params() {
  DsfsScalingParams params;
  params.num_clients = 8;
  params.reads_per_client = 30;
  return params;
}

TEST(DsfsScalingHarness, NetBoundOneServerSaturatesOnePort) {
  DsfsScalingParams params = small_params();
  params.num_servers = 1;
  params.num_files = 64;
  params.file_bytes = 1 << 20;
  DsfsScalingResult r = run_dsfs_scaling(params);
  // "One server can transmit at 100 MB/s, near the practical limit of TCP
  // on a 1Gb port."
  EXPECT_GT(r.mb_per_sec, 90.0);
  EXPECT_LT(r.mb_per_sec, 120.0);
}

TEST(DsfsScalingHarness, NetBoundManyServersHitBackplane) {
  DsfsScalingParams params = small_params();
  params.num_servers = 6;
  params.num_files = 128;
  params.file_bytes = 1 << 20;
  DsfsScalingResult r = run_dsfs_scaling(params);
  // Saturates the ~300 MB/s backplane.
  EXPECT_GT(r.mb_per_sec, 230.0);
  EXPECT_LT(r.mb_per_sec, 320.0);
}

TEST(DsfsScalingHarness, DiskBoundSingleServerRunsAtDiskRate) {
  DsfsScalingParams params = small_params();
  params.num_servers = 1;
  params.num_files = 320;      // 3.2 GB >> 512 MB cache
  params.file_bytes = 10 << 20;
  params.reads_per_client = 4;
  DsfsScalingResult r = run_dsfs_scaling(params);
  EXPECT_GT(r.mb_per_sec, 8.0);
  EXPECT_LT(r.mb_per_sec, 14.0);
}

TEST(DsfsScalingHarness, DiskBoundScalesWithServers) {
  DsfsScalingParams one = small_params();
  one.num_servers = 1;
  one.num_files = 320;
  one.file_bytes = 10 << 20;
  one.reads_per_client = 4;
  DsfsScalingParams four = one;
  four.num_servers = 4;
  double r1 = run_dsfs_scaling(one).mb_per_sec;
  double r4 = run_dsfs_scaling(four).mb_per_sec;
  // "Throughput increases roughly linearly with the number of servers."
  EXPECT_GT(r4, 2.5 * r1);
}

TEST(DsfsScalingHarness, MixedBoundCrossoverAtCacheFit) {
  // Per-server share of a 640 MB dataset: 640 (1 server, > cache) vs
  // 213 MB (3 servers, < cache): the crossover of Figure 7.
  DsfsScalingParams params = small_params();
  params.num_files = 640;
  params.file_bytes = 1 << 20;
  params.reads_per_client = 60;
  params.num_servers = 1;
  double starved = run_dsfs_scaling(params).mb_per_sec;
  params.num_servers = 3;
  double fits = run_dsfs_scaling(params).mb_per_sec;
  EXPECT_LT(starved, 60.0);   // disk-dominated
  EXPECT_GT(fits, 180.0);     // switch-dominated
  EXPECT_GT(fits, 4 * starved);
}

TEST(DsfsScalingHarness, DeterministicAcrossRuns) {
  DsfsScalingParams params = small_params();
  params.num_servers = 2;
  params.num_files = 32;
  params.file_bytes = 1 << 20;
  DsfsScalingResult a = run_dsfs_scaling(params);
  DsfsScalingResult b = run_dsfs_scaling(params);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(DsfsScalingHarness, AccountsAllRequestedBytes) {
  DsfsScalingParams params = small_params();
  params.num_servers = 2;
  params.num_files = 16;
  params.file_bytes = 1 << 20;
  params.reads_per_client = 10;
  DsfsScalingResult r = run_dsfs_scaling(params);
  EXPECT_EQ(r.bytes_read,
            uint64_t(params.num_clients) * params.reads_per_client *
                params.file_bytes);
}

}  // namespace
}  // namespace tss::bench
