# Empty dependencies file for dpfs_pool.
# This may be replaced when dependencies are built.
