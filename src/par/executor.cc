#include "par/executor.h"

namespace tss {

IoScheduler::IoScheduler() : IoScheduler(Options{}) {}

IoScheduler::IoScheduler(Options options)
    : options_(options),
      clock_(options.clock ? options.clock : &RealClock::instance()) {
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  m_inflight_ = metrics->gauge("client.inflight");
  m_queue_depth_ = metrics->gauge("client.queue_depth");
  m_submitted_ = metrics->counter("client.submitted");
  m_completed_ = metrics->counter("client.completed");
  m_rejected_ = metrics->counter("client.rejected");
  m_deadline_expired_ = metrics->counter("client.deadline_expired");
  if (options_.workers < 0) options_.workers = 0;
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; i++) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoScheduler::~IoScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With zero workers the queue may still hold jobs; every submitted job
  // must resolve, so drain them here.
  while (run_one()) {
  }
}

bool IoScheduler::enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= options_.max_queue) return false;
    queue_.push_back(std::move(job));
    m_queue_depth_->set(static_cast<int64_t>(queue_.size()));
    // Counted under the lock: a worker pops under the same mutex, so the
    // submitted/inflight bumps happen-before the job's completion decrement
    // and the gauge can never go transiently negative.
    m_submitted_->add();
    m_inflight_->add();
  }
  cv_.notify_one();
  return true;
}

void IoScheduler::job_done() {
  m_completed_->add();
  m_inflight_->sub();
}

void IoScheduler::count_expiry(bool* counted_flag) {
  // Caller holds the future state's mutex (dispatch expiry) or takes it
  // (waiter expiry); either way the flag flips exactly once per job.
  if (!*counted_flag) {
    *counted_flag = true;
    m_deadline_expired_->add();
  }
}

void IoScheduler::execute(Job job) {
  if (job.deadline > 0 && clock_->now() >= job.deadline) {
    job.expire();
    return;
  }
  job.run();
}

bool IoScheduler::run_one() {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
    m_queue_depth_->set(static_cast<int64_t>(queue_.size()));
  }
  execute(std::move(job));
  return true;
}

void IoScheduler::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      m_queue_depth_->set(static_cast<int64_t>(queue_.size()));
    }
    execute(std::move(job));
  }
}

}  // namespace tss
