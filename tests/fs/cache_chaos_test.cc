// Cache/integrity chaos: seeded FaultyFs corruption of cached blocks at
// rest must be caught by the digest validation on open — counted, refetched,
// and NEVER served — and a wire-integrity failure (EBADMSG) from the source
// must bypass, not poison, the cache. Counter accounting is asserted
// exactly: every injected fault maps to a specific fs.cache.* /
// fs.integrity.* increment.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "fs/cached.h"
#include "fs/faulty.h"
#include "fs/local.h"

namespace tss::fs {
namespace {

class CacheChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/cachechaos_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string make_root(const std::string& name) {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    return root;
  }

  std::string base_;
  static inline int counter_ = 0;
};

TEST_F(CacheChaosTest, AtRestBitFlipIsCaughtOnOpenAndNeverServed) {
  LocalFs source(make_root("src"));
  LocalFs store_disk(make_root("store"));
  // The at-rest store is a flaky disk: every pread of cached blocks flips
  // one bit, silently. Writes (publishing) stay clean.
  FaultSchedule schedule(/*seed=*/7);
  schedule.corrupt_bit_flip("pread");
  FaultyFs store(&store_disk, &schedule);

  obs::Registry registry;
  CachedFs::Options options;
  options.store = &store;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  const std::string payload = "precious bytes that must never rot";
  ASSERT_TRUE(source.write_file("/doc", payload).ok());

  // First read: a clean miss, published to the (flaky) store.
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.integrity.mismatch")->value(), 0u);

  // Second read: the cached blocks come back corrupted. The digest check on
  // open must catch it, discard the entry, refetch from the source, and
  // serve the *correct* bytes — corrupt blocks are never served.
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.integrity.mismatch")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.cache.invalidate")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 2u);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 0u);
  EXPECT_EQ(registry.counter("fs.cache.bypass")->value(), 0u);

  // Repair the disk: with corruption gone, the refetched entry serves hits.
  schedule.clear();
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.integrity.mismatch")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 2u);
}

TEST_F(CacheChaosTest, SourceEbadmsgBypassesAndNeverPoisonsTheCache) {
  LocalFs source_disk(make_root("src"));
  // The *source* reports a wire-integrity failure on the next fetch — the
  // shape a checksum-verified CfsFs mount produces when payload bytes fail
  // their digest.
  FaultSchedule schedule(/*seed=*/11);
  FaultyFs source(&source_disk, &schedule);

  obs::Registry registry;
  CachedFs::Options options;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  const std::string payload = "verified payload";
  ASSERT_TRUE(source_disk.write_file("/doc", payload).ok());

  // The cache's whole-file fetch fails with EBADMSG; the open must bypass
  // the cache (passthrough to the source) and cache nothing. The passthrough
  // read then succeeds — the fault was one-shot — so the caller still gets
  // correct bytes, and crucially nothing corrupt was published.
  schedule.fail_once(EBADMSG, "pread");
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.cache.bypass")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 0u);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 0u);
  EXPECT_EQ(cache.cached_bytes(), 0u);

  // With the fault gone the next read is an ordinary miss, then hits.
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 1u);
  EXPECT_EQ(cache.read_file("/doc").value(), payload);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.integrity.mismatch")->value(), 0u);
}

TEST_F(CacheChaosTest, PersistentSourceErrorSurfacesWithoutCorruptingState) {
  LocalFs source_disk(make_root("src"));
  FaultSchedule schedule(/*seed=*/13);
  FaultyFs source(&source_disk, &schedule);

  obs::Registry registry;
  CachedFs::Options options;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  ASSERT_TRUE(source_disk.write_file("/doc", "payload").ok());

  // A hard source failure (EIO, not an integrity errno) is NOT a bypass:
  // the open fails exactly as the source would, and nothing is cached.
  schedule.fail_always(EIO, "pread");
  auto r = cache.read_file("/doc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, EIO);
  EXPECT_EQ(registry.counter("fs.cache.bypass")->value(), 0u);
  EXPECT_EQ(cache.cached_bytes(), 0u);

  schedule.clear();
  EXPECT_EQ(cache.read_file("/doc").value(), "payload");
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 1u);
}

// Eviction accounting: filling past capacity evicts LRU entries, the bytes
// gauge tracks the entry set exactly, and evicted store blocks are removed.
TEST_F(CacheChaosTest, EvictionAccountingIsExact) {
  LocalFs source(make_root("src"));
  LocalFs store(make_root("store"));
  obs::Registry registry;
  CachedFs::Options options;
  options.capacity_bytes = 256;
  options.store = &store;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  std::string block(100, 'x');
  for (int f = 0; f < 3; f++) {
    std::string path = "/f" + std::to_string(f);
    ASSERT_TRUE(source.write_file(path, block).ok());
    EXPECT_EQ(cache.read_file(path).value(), block);
  }
  // Three 100-byte entries against a 256-byte capacity: one eviction.
  EXPECT_EQ(registry.counter("fs.cache.evict")->value(), 1u);
  EXPECT_EQ(cache.cached_bytes(), 200u);
  EXPECT_EQ(registry.gauge("fs.cache.bytes")->value(), 200);
  // The store holds exactly the two live entries' blocks.
  EXPECT_EQ(store.readdir("/").value().size(), 2u);
}

}  // namespace
}  // namespace tss::fs
