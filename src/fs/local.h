// LocalFs: a host directory presented through the FileSystem interface.
//
// This is both the bottom of every abstraction stack (a Chirp server's
// export is a local directory) and the metadata store of the DPFS, whose
// "directory structure is stored in a local Unix filesystem chosen by the
// user" (§5). Implemented by adapting chirp::PosixBackend, so host-path
// mapping and software-chroot behaviour are identical to what the file
// server enforces.
#pragma once

#include <memory>

#include "chirp/posix_backend.h"
#include "fs/filesystem.h"

namespace tss::fs {

class LocalFs final : public FileSystem {
 public:
  explicit LocalFs(std::string root);

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  Result<std::string> read_file(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;
  using FileSystem::write_file;

  const std::string& root() const { return backend_.root(); }

 private:
  chirp::PosixBackend backend_;
};

}  // namespace tss::fs
