file(REMOVE_RECURSE
  "CMakeFiles/backup.dir/backup.cpp.o"
  "CMakeFiles/backup.dir/backup.cpp.o.d"
  "backup"
  "backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
