// SubtreeFs: a filesystem view rooted at a subdirectory of another
// filesystem — the smallest possible recursive abstraction, and the glue
// that lets one server host several independent structures (a DSFS volume's
// tree, another user's workspace, ...) without them knowing their own
// position in the host's namespace.
#pragma once

#include "fs/filesystem.h"
#include "util/path.h"

namespace tss::fs {

class SubtreeFs final : public FileSystem {
 public:
  // `base` is borrowed; `prefix` is the canonical subtree root within it.
  SubtreeFs(FileSystem* base, std::string prefix)
      : base_(base), prefix_(path::sanitize(prefix)) {}

  Result<std::unique_ptr<File>> open(const std::string& p,
                                     const OpenFlags& flags,
                                     uint32_t mode) override {
    return base_->open(path::join(prefix_, p), flags, mode);
  }
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& p) override {
    return base_->stat(path::join(prefix_, p));
  }
  Result<void> unlink(const std::string& p) override {
    return base_->unlink(path::join(prefix_, p));
  }
  Result<void> rename(const std::string& from,
                      const std::string& to) override {
    return base_->rename(path::join(prefix_, from), path::join(prefix_, to));
  }
  Result<void> mkdir(const std::string& p, uint32_t mode) override {
    return base_->mkdir(path::join(prefix_, p), mode);
  }
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& p) override {
    return base_->rmdir(path::join(prefix_, p));
  }
  Result<void> truncate(const std::string& p, uint64_t size) override {
    return base_->truncate(path::join(prefix_, p), size);
  }
  Result<std::vector<DirEntry>> readdir(const std::string& p) override {
    return base_->readdir(path::join(prefix_, p));
  }
  Result<std::string> read_file(const std::string& p) override {
    return base_->read_file(path::join(prefix_, p));
  }
  Result<void> write_file(const std::string& p, std::string_view data,
                          uint32_t mode) override {
    return base_->write_file(path::join(prefix_, p), data, mode);
  }
  using FileSystem::write_file;

  const std::string& prefix() const { return prefix_; }

 private:
  FileSystem* base_;
  std::string prefix_;
};

}  // namespace tss::fs
