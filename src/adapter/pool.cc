#include "adapter/pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace tss::adapter {

Result<Pool> discover_pool(const net::Endpoint& catalog,
                           const PoolPolicy& policy,
                           const PoolOptions& options) {
  TSS_ASSIGN_OR_RETURN(auto listing, catalog::query(catalog));

  // Filter by policy.
  std::vector<catalog::ServerReport> candidates;
  for (const catalog::ServerReport& report : listing) {
    if (report.free_bytes < policy.min_free_bytes) continue;
    if (!wildcard_match(policy.owner_pattern, report.owner)) continue;
    candidates.push_back(report);
  }
  // Most free space first; deterministic tie-break by address.
  std::sort(candidates.begin(), candidates.end(),
            [](const catalog::ServerReport& a, const catalog::ServerReport& b) {
              if (a.free_bytes != b.free_bytes) {
                return a.free_bytes > b.free_bytes;
              }
              return a.address.to_string() < b.address.to_string();
            });
  if (policy.max_servers > 0 && candidates.size() > policy.max_servers) {
    candidates.resize(policy.max_servers);
  }

  Pool pool;
  for (const catalog::ServerReport& report : candidates) {
    fs::CfsFs::Options cfs_options;
    cfs_options.retry = options.retry;
    auto mount = std::make_unique<fs::CfsFs>(
        fs::chirp_connector(report.address, options.credentials,
                            options.io_timeout),
        cfs_options);
    // Catalog data is stale: probe before admitting the server.
    auto probe = mount->statfs();
    if (!probe.ok()) {
      TSS_DEBUG("pool") << "skipping " << report.address.to_string() << ": "
                        << probe.error().to_string();
      pool.skipped.push_back(Pool::Skipped{
          report.name.empty() ? report.address.to_string() : report.name,
          std::move(probe).take_error()});
      continue;
    }
    std::string name = report.name.empty() ? report.address.to_string()
                                           : report.name;
    // Disambiguate duplicate names by address.
    if (pool.servers.count(name)) name += "@" + report.address.to_string();
    pool.mounts.push_back(std::move(mount));
    pool.servers[name] = pool.mounts.back().get();
  }
  if (pool.servers.empty()) {
    return Error(ENODEV, "no usable servers in catalog listing");
  }
  return pool;
}

}  // namespace tss::adapter
