#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace tss {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  auto now = std::chrono::system_clock::now();
  std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);

  std::string line;
  line.reserve(component.size() + message.size() + 32);
  line += stamp;
  line += ' ';
  line += log_level_name(level);
  line += " [";
  line += component;
  line += "] ";
  line += message;

  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) {
    sink_(level, line);
  } else {
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
  }
}

}  // namespace tss
