#include "util/rand.h"

namespace tss {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 used to spread the seed across the state.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

uint64_t Rng::next() {
  uint64_t result = rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 % bound
  while (true) {
    uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::hex(size_t chars) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(chars);
  uint64_t bits = 0;
  int have = 0;
  for (size_t i = 0; i < chars; i++) {
    if (have == 0) {
      bits = next();
      have = 16;
    }
    out += kDigits[bits & 0xF];
    bits >>= 4;
    have--;
  }
  return out;
}

}  // namespace tss
