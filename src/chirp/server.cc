#include "chirp/server.h"

#include <cstring>

#include "auth/hostname.h"
#include "auth/unix.h"
#include "net/line_stream.h"
#include "util/logging.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::chirp {

namespace {

// Challenge rounds carried on the control stream: the server emits
// "challenge <urlenc data>" lines and reads back one raw response line.
class StreamChallengeIo final : public auth::ChallengeIo {
 public:
  explicit StreamChallengeIo(net::LineStream& stream) : stream_(stream) {}

  Result<void> send_challenge(const std::string& data) override {
    return stream_.send_line("challenge " + url_encode(data));
  }

  Result<std::string> read_response() override {
    TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
    return url_decode(line);
  }

 private:
  net::LineStream& stream_;
};

}  // namespace

Server::Server(ServerOptions options, std::unique_ptr<Backend> backend,
               std::unique_ptr<auth::ServerAuth> auth)
    : options_(std::move(options)),
      backend_(std::move(backend)),
      auth_(std::move(auth)) {
  config_.owner = options_.owner;
  config_.root_acl = options_.root_acl;
  config_.auth = auth_.get();
  config_.metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
}

Server::~Server() { stop(); }

Result<void> Server::start() {
  net::ServerLoop::Limits limits;
  limits.max_connections = options_.max_connections;
  // A refused client gets a parseable Chirp error line, not a bare EOF: its
  // first RPC fails with EBUSY and it can back off and retry.
  limits.reject_notice =
      encode_response_line(
          Response::failure(EBUSY, "server at connection limit")) +
      "\n";
  limits.rejected_counter =
      config_.metrics->counter("chirp.server.rejected_connections");
  return loop_.start(options_.host, options_.port,
                     [this](net::TcpSocket sock) {
                       serve_connection(std::move(sock));
                     },
                     limits);
}

void Server::stop() { loop_.stop(); }

Server::Info Server::info() const {
  Info info;
  info.owner = options_.owner;
  info.endpoint = net::Endpoint{options_.host, loop_.port()};
  if (auto space = backend_->statfs(); space.ok()) {
    info.total_bytes = space.value().first;
    info.free_bytes = space.value().second;
  }
  info.root_acl = config_.root_acl.serialize();
  return info;
}

void Server::serve_connection(net::TcpSocket sock) {
  auth::PeerInfo peer;
  if (auto ep = sock.peer(); ep.ok()) peer.ip = ep.value().host;

  net::LineStream stream(std::move(sock), options_.io_timeout);
  SessionCore session(config_, *backend_, peer);
  std::string request_payload;
  std::string response_payload;

  obs::Gauge* active_gauge =
      config_.metrics->gauge("chirp.server.active_sessions");
  active_gauge->add(1);
  struct GaugeDrop {
    obs::Gauge* g;
    ~GaugeDrop() { g->sub(1); }
  } gauge_drop{active_gauge};

  // Between requests the session may sit idle for at most idle_timeout;
  // within a request, every read/write gets the (usually tighter) io
  // timeout. An idle session that times out is reaped exactly like a
  // disconnect — the dtor frees all its state.
  const Nanos idle_wait =
      options_.idle_timeout > 0 ? options_.idle_timeout : options_.io_timeout;

  while (true) {
    stream.set_timeout(idle_wait);
    auto line = stream.read_line();
    stream.set_timeout(options_.io_timeout);
    if (!line.ok()) {
      if (line.error().code == ETIMEDOUT) {
        // Reaping must be visible: operators see stalled clients in the log
        // and the idle_reaped counter, not a mystery disconnect.
        TSS_WARN("chirp") << "reaping idle session from " << peer.ip
                          << " after "
                          << idle_wait / kMillisecond << "ms without a request";
        config_.metrics->counter("chirp.server.idle_reaped")->add();
      }
      break;  // disconnect or idle: session dtor frees all state
    }

    auto parsed = parse_request_line(line.value());
    if (!parsed.ok()) {
      Response resp = Response::failure(parsed.error());
      if (!stream.send_line(encode_response_line(resp)).ok()) break;
      continue;
    }
    Request& request = parsed.value();

    if (request.op == Op::kAuth) {
      Nanos op_start = session.clock().now();
      StreamChallengeIo io(stream);
      auto subject =
          session.authenticate(request.auth_method, request.auth_arg, io);
      Response resp;
      if (subject.ok()) {
        resp.args.push_back(url_encode(subject.value().to_string()));
      } else {
        resp = Response::failure(subject.error());
      }
      session.record_op(Op::kAuth, op_start, 0, 0, resp.err);
      if (!stream.send_line(encode_response_line(resp)).ok()) break;
      continue;
    }

    // getfile/putfile bodies can exceed memory; stream them chunkwise
    // through the session's validated backend handles instead of buffering.
    constexpr size_t kStreamChunk = 256 * 1024;
    if (request.op == Op::kGetfile) {
      Nanos op_start = session.clock().now();
      uint64_t size = 0;
      auto handle = session.stream_open_read(request.path, &size);
      if (!handle.ok()) {
        Response resp = Response::failure(handle.error());
        session.record_op(Op::kGetfile, op_start, 0, 0, resp.err);
        if (!stream.send_line(encode_response_line(resp)).ok()) break;
        continue;
      }
      Response resp;
      resp.args.push_back(std::to_string(size));
      stream.write_line(encode_response_line(resp));
      std::string chunk(std::min<uint64_t>(size, kStreamChunk), '\0');
      uint64_t offset = 0;
      bool io_ok = true;
      while (offset < size) {
        size_t want = static_cast<size_t>(
            std::min<uint64_t>(size - offset, kStreamChunk));
        auto n = session.backend().pread(handle.value(), chunk.data(), want,
                                         static_cast<int64_t>(offset));
        if (!n.ok() || n.value() == 0) {
          // The size was already promised; pad with zeros to keep the
          // stream in sync (the file shrank mid-transfer).
          std::memset(chunk.data(), 0, want);
          stream.write_blob(chunk.data(), want);
          offset += want;
        } else {
          stream.write_blob(chunk.data(), n.value());
          offset += n.value();
        }
        if (!stream.flush().ok()) {
          io_ok = false;
          break;
        }
      }
      session.stream_close(handle.value());
      session.record_op(Op::kGetfile, op_start, 0, offset,
                        io_ok ? 0 : EPIPE);
      if (!io_ok) break;
      // Zero-length files skip the loop entirely; the header still has to
      // reach the client.
      if (!stream.flush().ok()) break;
      continue;
    }
    if (request.op == Op::kPutfile) {
      Nanos op_start = session.clock().now();
      uint64_t size = request.length;
      auto handle = session.stream_open_write(request.path, request.mode);
      std::string chunk(static_cast<size_t>(
                            std::min<uint64_t>(size, kStreamChunk)),
                        '\0');
      if (!handle.ok()) {
        // Drain the promised body so the connection stays usable.
        uint64_t remaining = size;
        bool drained = true;
        while (remaining > 0) {
          size_t want = static_cast<size_t>(
              std::min<uint64_t>(remaining, kStreamChunk));
          if (!stream.read_blob(chunk.data(), want).ok()) {
            drained = false;
            break;
          }
          remaining -= want;
        }
        if (!drained) break;
        Response resp = Response::failure(handle.error());
        session.record_op(Op::kPutfile, op_start, size - remaining, 0,
                          resp.err);
        if (!stream.send_line(encode_response_line(resp)).ok()) break;
        continue;
      }
      uint64_t offset = 0;
      Result<void> write_rc = Result<void>::success();
      bool io_ok = true;
      while (offset < size) {
        size_t want = static_cast<size_t>(
            std::min<uint64_t>(size - offset, kStreamChunk));
        if (!stream.read_blob(chunk.data(), want).ok()) {
          io_ok = false;
          break;
        }
        if (write_rc.ok()) {
          auto n = session.backend().pwrite(handle.value(), chunk.data(),
                                            want,
                                            static_cast<int64_t>(offset));
          if (!n.ok()) {
            write_rc = std::move(n).take_error();
          } else if (n.value() != want) {
            write_rc = Error(EIO, "short putfile write");
          }
        }
        offset += want;
      }
      session.stream_close(handle.value());
      Response resp =
          write_rc.ok() ? Response{} : Response::failure(write_rc.error());
      session.record_op(Op::kPutfile, op_start, offset, 0,
                        io_ok ? resp.err : EPIPE);
      if (!io_ok) break;
      if (!stream.send_line(encode_response_line(resp)).ok()) break;
      continue;
    }

    // Receive the request body, if any, before dispatching.
    SessionCore::Payload payload;
    request_payload.clear();
    uint64_t body = request.payload_len();
    if (body > 0) {
      request_payload.resize(static_cast<size_t>(body));
      if (!stream.read_blob(request_payload.data(), request_payload.size())
               .ok()) {
        break;
      }
      payload.data = request_payload.data();
      payload.size = body;
    }

    response_payload.clear();
    Response resp = session.handle(request, payload, &response_payload);
    stream.write_line(encode_response_line(resp));
    if (resp.ok() && !response_payload.empty()) {
      stream.write_blob(response_payload.data(), response_payload.size());
    }
    if (!stream.flush().ok()) break;
  }
}

std::unique_ptr<auth::ServerAuth> make_default_auth(
    const std::string& unix_challenge_dir) {
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  auth->add(std::make_unique<auth::UnixServerMethod>(unix_challenge_dir));
  return auth;
}

}  // namespace tss::chirp
