// The simulated cluster: nodes with NIC ports joined by a commodity switch.
//
// Defaults model the paper's testbed (§7): "each node has a 250 GB SATA
// disk, 512 MB RAM, and a full-duplex gigabit Ethernet connection to a
// commodity switch". A 1 Gb/s port carries ~112 MB/s of payload after
// framing/TCP overhead ("one server can transmit at 100 MB/s, near the
// practical limit of TCP on a 1Gb port"); the inexpensive switch's shared
// backplane saturates near 300 MB/s (Figure 6).
//
// Transfers move chunk-by-chunk through three reservation timelines —
// sender NIC, backplane, receiver NIC — so concurrent flows share each
// resource fairly and queueing delay emerges naturally.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"

namespace tss::sim {

class Cluster {
 public:
  struct Config {
    double nic_bytes_per_sec = 112.0 * 1000 * 1000;        // ~1 Gb/s payload
    double backplane_bytes_per_sec = 300.0 * 1000 * 1000;  // commodity switch
    Nanos link_latency = 75 * kMicrosecond;  // one-way propagation + stack
    uint64_t transfer_chunk = 64 * 1024;     // pipelining granularity
  };

  Cluster(Engine& engine, Config config);

  // Adds a node; returns its id. Each node has independent full-duplex
  // tx/rx port queues.
  int add_node();
  size_t node_count() const { return nodes_.size(); }

  // Moves `bytes` from node `from` to node `to`; completes (resumes the
  // awaiter) when the last byte arrives.
  Task<void> transfer(int from, int to, uint64_t bytes);

  // Non-coroutine variant used by modeled (non-protocol) flows: reserves
  // the full path and returns the arrival time without waiting.
  Nanos reserve_transfer(int from, int to, uint64_t bytes);

  Engine& engine() { return engine_; }
  const Config& config() const { return config_; }
  uint64_t backplane_bytes() const { return backplane_.total_bytes(); }

 private:
  struct Node {
    std::unique_ptr<RateQueue> tx;
    std::unique_ptr<RateQueue> rx;
  };

  Engine& engine_;
  Config config_;
  RateQueue backplane_;
  std::vector<Node> nodes_;
};

}  // namespace tss::sim
