#include "fs/replicated.h"

#include <chrono>
#include <condition_variable>
#include <cstring>

#include "util/logging.h"
#include "util/path.h"

namespace tss::fs {

namespace {

// Failures that speak to a replica's *availability* and count toward its
// circuit breaker. Semantic refusals (ENOENT, EEXIST, EACCES...) do not: a
// replica that is reachable but missing one file is a divergence problem,
// not an availability problem.
bool is_availability_error(int code) {
  return code == EIO || code == EPIPE || code == ECONNRESET ||
         code == ECONNREFUSED || code == ETIMEDOUT || code == EHOSTUNREACH ||
         code == ENETDOWN || code == ENETUNREACH || code == ENODEV ||
         code == EBADF || code == ESTALE;
}

}  // namespace

// An open replicated file: writes fan out to every replica that opened;
// reads come from the first live one (or, in hedged mode, from whichever
// clean replica answers first). Outcomes are reported back to the parent so
// its per-replica health tracking sees file-level failures too.
class ReplicatedFile final : public File {
 public:
  struct Member {
    size_t index;  // replica index in the parent
    std::unique_ptr<File> file;
  };

  ReplicatedFile(ReplicatedFs* parent, std::vector<Member> members)
      : parent_(parent), members_(std::move(members)) {}

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    std::vector<char> already_tried(members_.size(), 0);
    Error last(EIO, "no replica answered");
    IoScheduler* scheduler = parent_->options_.scheduler;
    if (scheduler && parent_->options_.hedged_reads) {
      // Hedge only across currently-clean replicas: a diverged replica must
      // never win the race with stale bytes. One clean replica is not a
      // race — fall through to plain failover.
      std::vector<size_t> hedges;
      for (size_t k = 0; k < members_.size(); k++) {
        if (!members_[k].file) continue;
        size_t i = members_[k].index;
        // A quarantined replica must not win the race either: it is fast and
        // reachable but its bytes have already failed verification once.
        if (parent_->replica_available(i) && !parent_->replica_diverged(i) &&
            !parent_->replica_quarantined(i)) {
          hedges.push_back(k);
        }
      }
      if (hedges.size() >= 2) {
        // pread_hedged marks only the hedges whose job actually ran (and was
        // accounted); a hedge whose submit the scheduler rejected stays
        // untried, so serial failover below still consults that replica.
        auto first = pread_hedged(data, size, offset, scheduler, hedges,
                                  &already_tried);
        if (first.ok()) return first;
        last = std::move(first).take_error();
      }
    }
    // Quarantined members are a last resort (second pass): their bytes
    // failed verification once already, so every clean member gets a chance
    // to answer before a suspect one is consulted at all.
    for (int pass = 0; pass < 2; pass++) {
      for (size_t k = 0; k < members_.size(); k++) {
        Member& m = members_[k];
        if (!m.file || already_tried[k]) continue;
        if ((pass == 0) == parent_->replica_quarantined(m.index)) continue;
        auto n = m.file->pread(data, size, offset);
        if (n.ok()) {
          parent_->note_success(m.index);
          return n;
        }
        last = std::move(n).take_error();
        parent_->note_failure(m.index, last.code);
        already_tried[k] = 1;
      }
    }
    return last;
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    // A failed write drops the member's file, so any hedge stragglers still
    // reading through it must finish first.
    drain_hedges();
    // Every live replica writes concurrently; outcomes are accounted in
    // member order after the join, so health and divergence transitions are
    // identical to the serial path's.
    std::vector<size_t> live;
    for (size_t k = 0; k < members_.size(); k++) {
      if (members_[k].file) live.push_back(k);
    }
    std::vector<Result<size_t>> results =
        fan_out(parent_->options_.scheduler, live.size(), [&](size_t j) {
          return members_[live[j]].file->pwrite(data, size, offset);
        });
    std::optional<size_t> wrote;
    Error last(EIO, "no replica accepted the write");
    std::vector<size_t> failed;
    for (size_t j = 0; j < live.size(); j++) {
      Member& m = members_[live[j]];
      if (results[j].ok()) {
        parent_->note_success(m.index);
        wrote = results[j].value();
      } else {
        last = std::move(results[j]).take_error();
        TSS_WARN("replicated") << "replica write failed: " << last.to_string();
        parent_->note_failure(m.index, last.code);
        failed.push_back(m.index);
        // Drop the replica from this handle so reads don't see stale data
        // through it.
        m.file.reset();
      }
    }
    if (!wrote) return last;
    // The write landed somewhere, so every replica that missed it is now
    // behind the others.
    for (size_t i : failed) parent_->mark_diverged(i);
    return *wrote;
  }

  Result<void> fsync() override {
    Result<void> result = Result<void>::success();
    bool any = false;
    for (auto& m : members_) {
      if (!m.file) continue;
      auto rc = m.file->fsync();
      if (rc.ok()) {
        any = true;
      } else {
        result = std::move(rc);
      }
    }
    if (any) return Result<void>::success();
    return result;
  }

  Result<StatInfo> fstat() override {
    Error last(EIO, "no replica answered");
    for (auto& m : members_) {
      if (!m.file) continue;
      auto info = m.file->fstat();
      if (info.ok()) return info;
      last = std::move(info).take_error();
    }
    return last;
  }

  Result<void> close() override {
    drain_hedges();
    Result<void> result = Result<void>::success();
    for (auto& m : members_) {
      if (!m.file) continue;
      auto rc = m.file->close();
      if (!rc.ok()) result = std::move(rc);
      m.file.reset();
    }
    return result;
  }

  ~ReplicatedFile() override { (void)close(); }

 private:
  // Shared bookkeeping of one hedged read. The state (and each hedge's
  // scratch buffer) outlives the caller via shared_ptr: the winner's bytes
  // are copied into the caller's buffer by the waiting thread, while losing
  // hedges keep writing their own scratch harmlessly.
  struct HedgeState {
    std::mutex mutex;
    std::condition_variable cv;
    size_t remaining;
    bool won = false;
    size_t winner_hedge = 0;
    size_t winner_bytes = 0;
    std::optional<Error> last;
    std::vector<std::vector<char>> scratch;
  };

  // Races the read across `hedges` (indexes into members_). Returns the
  // first success, leaving the losers to finish in the background — close()
  // drains them before the member files go away. If every hedge fails, the
  // last error is returned (each failure was already accounted). Hedges that
  // actually ran are flagged in `already_tried`; one whose submission the
  // scheduler rejected (queue full) is not, so the serial fallback still
  // gets to consult that replica.
  Result<size_t> pread_hedged(void* data, size_t size, int64_t offset,
                              IoScheduler* scheduler,
                              const std::vector<size_t>& hedges,
                              std::vector<char>* already_tried) {
    auto state = std::make_shared<HedgeState>();
    state->remaining = hedges.size();
    state->scratch.resize(hedges.size());
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      hedges_pending_ += hedges.size();
    }
    for (size_t h = 0; h < hedges.size(); h++) {
      Member& m = members_[hedges[h]];
      state->scratch[h].resize(size);
      auto future = scheduler->submit([this, state, h, &m, size,
                                       offset]() -> Result<void> {
        auto n = m.file->pread(state->scratch[h].data(), size, offset);
        if (n.ok()) {
          parent_->note_success(m.index);
        } else {
          parent_->note_failure(m.index, n.error().code);
        }
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->remaining--;
          if (n.ok() && !state->won) {
            state->won = true;
            state->winner_hedge = h;
            state->winner_bytes = n.value();
          } else if (!n.ok()) {
            state->last = n.error();
          }
        }
        state->cv.notify_all();
        {
          // Notify under the lock: the moment hedges_pending_ hits zero with
          // the lock released, drain_hedges() may return and the file (and
          // this cv) be destroyed, so an unlocked notify would race the
          // destructor. A waiter re-checks under this same mutex, so the cv
          // cannot be destroyed before a locked notify completes.
          std::lock_guard<std::mutex> lock(drain_mutex_);
          hedges_pending_--;
          drain_cv_.notify_all();
        }
        return Result<void>::success();
      });
      if (future.rejected()) {
        // The queue refused the job: it never ran and never will, so its
        // share of the pre-incremented accounting must be rolled back here —
        // otherwise hedges_pending_ leaks and every later drain_hedges()
        // (pwrite/close/destructor) hangs forever.
        {
          std::lock_guard<std::mutex> lock(drain_mutex_);
          hedges_pending_--;
          drain_cv_.notify_all();
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        state->remaining--;
        if (!state->last) {
          state->last = Error(EBUSY, "io scheduler queue full");
        }
      } else {
        (*already_tried)[hedges[h]] = 1;
      }
    }
    // Wait for a winner (or for every hedge to fail), helping the scheduler
    // run queued jobs meanwhile so the race cannot stall on busy workers.
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state->mutex);
        if (state->won) {
          std::memcpy(data, state->scratch[state->winner_hedge].data(),
                      state->winner_bytes);
          return state->winner_bytes;
        }
        if (state->remaining == 0) {
          return state->last ? *state->last
                             : Error(EIO, "no replica answered");
        }
      }
      if (scheduler->run_one()) continue;
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->won || state->remaining == 0) continue;
      state->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  // Blocks until no hedge job still references this file's members, helping
  // to run queued jobs so the drain cannot stall.
  void drain_hedges() {
    IoScheduler* scheduler = parent_->options_.scheduler;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(drain_mutex_);
        if (hedges_pending_ == 0) return;
      }
      if (scheduler && scheduler->run_one()) continue;
      std::unique_lock<std::mutex> lock(drain_mutex_);
      if (hedges_pending_ == 0) return;
      drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  ReplicatedFs* parent_;
  std::vector<Member> members_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  size_t hedges_pending_ = 0;
};

ReplicatedFs::ReplicatedFs(std::vector<FileSystem*> replicas, Options options)
    : replicas_(std::move(replicas)),
      options_(options),
      health_(replicas_.size()) {
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  m_breaker_opens_ = metrics->counter("replicated.breaker_opens");
  m_breaker_closes_ = metrics->counter("replicated.breaker_closes");
  m_diverged_ = metrics->counter("replicated.diverged");
  m_repaired_ = metrics->counter("replicated.repaired");
  m_integrity_mismatch_ = metrics->counter("fs.integrity.mismatch");
  m_quarantine_ = metrics->counter("fs.integrity.quarantine");
  m_integrity_repaired_ = metrics->counter("fs.integrity.repaired");
  g_quarantined_ = metrics->gauge("fs.integrity.quarantined");
}

bool ReplicatedFs::replica_available(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_locked(i);
}

bool ReplicatedFs::replica_diverged(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_[i].diverged;
}

bool ReplicatedFs::replica_quarantined(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_[i].quarantined;
}

void ReplicatedFs::quarantine(size_t i) {
  if (i >= replicas_.size()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (health_[i].quarantined) return;
  health_[i].quarantined = true;
  m_quarantine_->add();
  g_quarantined_->add(1);
  TSS_WARN("replicated") << "replica " << i
                         << " quarantined: integrity suspect";
}

void ReplicatedFs::unquarantine(size_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!health_[i].quarantined) return;
  health_[i].quarantined = false;
  g_quarantined_->sub(1);
  m_integrity_repaired_->add();
  TSS_INFO("replicated") << "replica " << i
                         << " verified; quarantine lifted";
}

void ReplicatedFs::note_success(size_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (health_[i].consecutive_failures >= options_.failure_threshold) {
    TSS_INFO("replicated") << "replica " << i
                           << " recovered; circuit breaker closed";
    m_breaker_closes_->add();
  }
  health_[i].consecutive_failures = 0;
}

void ReplicatedFs::note_failure(size_t i, int code) {
  if (code == EBADMSG) {
    // Typed integrity failure: the replica answered, but with bytes that
    // failed verification. That is a data problem, not an availability
    // problem — the breaker stays untouched; the replica is quarantined.
    m_integrity_mismatch_->add();
    quarantine(i);
    return;
  }
  if (!is_availability_error(code)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[i];
  h.consecutive_failures++;
  if (h.consecutive_failures == options_.failure_threshold) {
    TSS_WARN("replicated") << "replica " << i << " failed "
                           << h.consecutive_failures
                           << " consecutive ops; circuit breaker open";
    m_breaker_opens_->add();
  }
}

void ReplicatedFs::mark_diverged(size_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!health_[i].diverged) m_diverged_->add();
  health_[i].diverged = true;
}

std::vector<size_t> ReplicatedFs::read_order(size_t* clean_count) const {
  std::vector<size_t> order, broken;
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (available_locked(i) && !health_[i].diverged &&
        !health_[i].quarantined) {
      order.push_back(i);
    } else {
      broken.push_back(i);
    }
  }
  // Broken replicas come last: they are only consulted when every clean
  // replica has failed, so the common-case read never pays their timeout.
  if (clean_count) *clean_count = order.size();
  order.insert(order.end(), broken.begin(), broken.end());
  return order;
}

std::vector<size_t> ReplicatedFs::write_targets(std::vector<size_t>* skipped) {
  std::vector<size_t> targets;
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (available_locked(i)) {
      targets.push_back(i);
    } else {
      skipped->push_back(i);
    }
  }
  // With every breaker open there is nothing useful to skip *to*; attempt
  // all replicas so the caller gets the real error (and a revived replica
  // gets a chance to close its breaker).
  if (targets.empty()) {
    targets.swap(*skipped);
  }
  return targets;
}

template <typename Fn>
Result<void> ReplicatedFs::broadcast(Fn&& fn) {
  std::vector<size_t> skipped;
  std::vector<size_t> targets = write_targets(&skipped);
  // All targets run concurrently; outcomes are accounted in replica order
  // after the join, so transition counting matches the serial path exactly.
  std::vector<Result<void>> outcomes =
      fan_out(options_.scheduler, targets.size(),
              [&](size_t j) { return fn(*replicas_[targets[j]]); });
  std::vector<size_t> failed;
  bool any = false;
  Error last(EIO, "no replica reachable");
  for (size_t j = 0; j < targets.size(); j++) {
    size_t i = targets[j];
    if (outcomes[j].ok()) {
      any = true;
      note_success(i);
    } else {
      last = std::move(outcomes[j]).take_error();
      note_failure(i, last.code);
      failed.push_back(i);
    }
  }
  if (!any) return last;
  // The mutation landed on at least one replica: every replica that missed
  // it (failed or skipped by its breaker) is now diverged. When it landed
  // nowhere, the replicas are still mutually consistent — no divergence.
  for (size_t i : failed) mark_diverged(i);
  for (size_t i : skipped) mark_diverged(i);
  return Result<void>::success();
}

template <typename Fn>
auto ReplicatedFs::first_success(Fn&& fn)
    -> decltype(fn(std::declval<FileSystem&>())) {
  Error last(EIO, "no replica reachable");
  for (size_t i : read_order()) {
    auto result = fn(*replicas_[i]);
    if (result.ok()) {
      note_success(i);
      return result;
    }
    last = std::move(result).take_error();
    note_failure(i, last.code);
  }
  return last;
}

Result<std::unique_ptr<File>> ReplicatedFs::open(const std::string& p,
                                                 const OpenFlags& flags,
                                                 uint32_t mode) {
  std::string canonical = path::sanitize(p);
  const bool mutates = flags.write || flags.create || flags.truncate;
  // A mutating open fans out like a broadcast; a read-open follows read
  // order so a dead or diverged replica never fronts the file.
  std::vector<size_t> skipped;
  size_t clean_count = 0;
  std::vector<size_t> order =
      mutates ? write_targets(&skipped) : read_order(&clean_count);
  std::vector<ReplicatedFile::Member> members;
  std::vector<size_t> failed;
  bool any = false;
  Error last(EIO, "no replica reachable");
  for (size_t pos = 0; pos < order.size(); pos++) {
    size_t i = order[pos];
    // The broken tail of the read order is a last resort: once any clean
    // replica fronts the file, don't pay a dead replica's failure (or risk a
    // diverged replica's stale bytes) on every open.
    if (!mutates && pos >= clean_count && any) break;
    auto file = replicas_[i]->open(canonical, flags, mode);
    if (file.ok()) {
      members.push_back({i, std::move(file).value()});
      note_success(i);
      any = true;
    } else {
      last = std::move(file).take_error();
      // A hard semantic refusal (EEXIST on O_EXCL) must win over partial
      // success — otherwise exclusive create loses its meaning.
      if (last.code == EEXIST && flags.exclusive) return last;
      note_failure(i, last.code);
      failed.push_back(i);
    }
  }
  if (!any) return last;
  if (mutates) {
    for (size_t i : failed) mark_diverged(i);
    for (size_t i : skipped) mark_diverged(i);
  }
  return std::unique_ptr<File>(new ReplicatedFile(this, std::move(members)));
}

Result<StatInfo> ReplicatedFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return first_success([&](FileSystem& fs) { return fs.stat(canonical); });
}

Result<void> ReplicatedFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.unlink(canonical); });
}

Result<void> ReplicatedFs::rename(const std::string& from,
                                  const std::string& to) {
  std::string f = path::sanitize(from), t = path::sanitize(to);
  return broadcast([&](FileSystem& fs) { return fs.rename(f, t); });
}

Result<void> ReplicatedFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.mkdir(canonical, mode); });
}

Result<void> ReplicatedFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.rmdir(canonical); });
}

Result<void> ReplicatedFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  return broadcast(
      [&](FileSystem& fs) { return fs.truncate(canonical, size); });
}

Result<std::vector<DirEntry>> ReplicatedFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return first_success([&](FileSystem& fs) { return fs.readdir(canonical); });
}

Result<void> ReplicatedFs::probe(size_t i) {
  if (i >= replicas_.size()) return Error(EINVAL, "no such replica");
  auto rc = replicas_[i]->stat("/");
  if (rc.ok()) {
    note_success(i);
    return Result<void>::success();
  }
  note_failure(i, rc.error().code);
  return std::move(rc).take_error();
}

Result<int> ReplicatedFs::repair(const std::string& p) {
  std::string canonical = path::sanitize(p);
  // Source: the first clean replica holding the file (a diverged or
  // quarantined replica must never be the golden copy).
  FileSystem* source = nullptr;
  size_t source_index = 0;
  for (size_t i : read_order()) {
    if (replicas_[i]->stat(canonical).ok()) {
      source = replicas_[i];
      source_index = i;
      break;
    }
  }
  if (!source) return Error(ENOENT, "no replica holds " + canonical);
  TSS_ASSIGN_OR_RETURN(std::string golden, source->read_file(canonical));

  int repaired = 0;
  for (size_t i = 0; i < replicas_.size(); i++) {
    FileSystem* replica = replicas_[i];
    if (i == source_index) continue;
    auto current = replica->read_file(canonical);
    if (current.ok() && current.value() == golden) {
      note_success(i);
      // Byte-identical to the golden copy: an integrity suspicion against
      // this replica is disproven for this file.
      unquarantine(i);
      continue;
    }
    auto rc = replica->write_file(canonical, golden);
    if (!rc.ok() && rc.error().code == ENOENT) {
      // A replacement replica may lack the parent directories entirely.
      auto made = mkdir_recursive(*replica, path::dirname(canonical));
      if (made.ok()) rc = replica->write_file(canonical, golden);
    }
    if (rc.ok()) {
      repaired++;
      m_repaired_->add();
      // Converged: reachable and carrying the golden bytes again; close the
      // breaker, clear the diverged mark, and lift any quarantine.
      std::lock_guard<std::mutex> lock(mutex_);
      if (health_[i].consecutive_failures >= options_.failure_threshold) {
        m_breaker_closes_->add();
      }
      health_[i].consecutive_failures = 0;
      health_[i].diverged = false;
      if (health_[i].quarantined) {
        health_[i].quarantined = false;
        g_quarantined_->sub(1);
        m_integrity_repaired_->add();
      }
    } else {
      note_failure(i, rc.error().code);
    }
  }
  return repaired;
}

}  // namespace tss::fs
