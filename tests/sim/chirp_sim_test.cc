// The simulated Chirp service: same protocol and session code as the TCP
// server, timed against the virtual cluster.
#include "sim/chirp_sim.h"

#include <gtest/gtest.h>

#include "sim/sim_backend.h"

// gtest ASSERT_* expands to `return;`, which is ill-formed inside a
// coroutine; CO_REQUIRE records the failure and co_returns instead.
#define CO_REQUIRE(cond)                 \
  if (!(cond)) {                         \
    ADD_FAILURE() << "failed: " << #cond; \
    co_return;                           \
  }

namespace tss::sim {
namespace {

chirp::OpenFlags flags_of(const char* s) {
  return chirp::OpenFlags::parse(s).value();
}

class SimChirpTest : public ::testing::Test {
 protected:
  SimChirpTest() : cluster_(engine_, Cluster::Config{}) {}

  Engine engine_;
  Cluster cluster_;
};

TEST_F(SimChirpTest, ConnectAuthAndBasicIo) {
  SimChirpServer server(cluster_, SimChirpServer::Options{});
  int client_node = cluster_.add_node();
  SimChirpClient client(cluster_, client_node, server, "node1");

  bool completed = false;
  spawn(engine_, [](SimChirpClient& c, bool* done) -> Task<void> {
    auto connected = co_await c.connect();
    CO_REQUIRE(connected.ok());

    auto fd = co_await c.open("/file", flags_of("wc"), 0644);
    CO_REQUIRE(fd.ok());
    auto wrote = co_await c.pwrite(fd.value(), 1 << 20, 0);
    CO_REQUIRE(wrote.ok());
    EXPECT_EQ(wrote.value(), 1u << 20);
    CO_REQUIRE((co_await c.close_fd(fd.value())).ok());

    auto info = co_await c.stat("/file");
    CO_REQUIRE(info.ok());
    EXPECT_EQ(info.value().size, 1u << 20);

    auto rfd = co_await c.open("/file", flags_of("r"), 0);
    CO_REQUIRE(rfd.ok());
    auto n = co_await c.pread(rfd.value(), 1 << 20, 0);
    CO_REQUIRE(n.ok());
    EXPECT_EQ(n.value(), 1u << 20);
    *done = true;
  }(client, &completed));

  engine_.run();
  EXPECT_TRUE(completed);
  EXPECT_GT(engine_.now(), 0);
}

TEST_F(SimChirpTest, AclsEnforcedInSimulationToo) {
  SimChirpServer::Options options;
  options.root_acl_text = "hostname:trusted rwl\n";  // node1 not matched
  SimChirpServer server(cluster_, options);
  int client_node = cluster_.add_node();
  SimChirpClient client(cluster_, client_node, server, "node1");

  bool checked = false;
  spawn(engine_, [](SimChirpClient& c, bool* done) -> Task<void> {
    CO_REQUIRE((co_await c.connect()).ok());
    auto fd = co_await c.open("/x", flags_of("wc"), 0644);
    EXPECT_FALSE(fd.ok());
    if (!fd.ok()) {
      EXPECT_EQ(fd.error().code, EACCES);
    }
    *done = true;
  }(client, &checked));
  engine_.run();
  EXPECT_TRUE(checked);
}

TEST_F(SimChirpTest, StubFilesCarryRealContent) {
  SimChirpServer server(cluster_, SimChirpServer::Options{});
  int client_node = cluster_.add_node();
  SimChirpClient client(cluster_, client_node, server, "node1");

  bool checked = false;
  spawn(engine_, [](SimChirpClient& c, bool* done) -> Task<void> {
    CO_REQUIRE((co_await c.connect()).ok());
    CO_REQUIRE((co_await c.mkdir("/tree")).ok());
    std::string stub = "tssstub v1\nserver host5\npath /vol/file596\n";
    CO_REQUIRE((co_await c.putfile("/tree/paper.txt", stub)).ok());
    auto got = co_await c.getfile("/tree/paper.txt");
    CO_REQUIRE(got.ok());
    EXPECT_EQ(got.value(), stub);
    *done = true;
  }(client, &checked));
  engine_.run();
  EXPECT_TRUE(checked);
}

TEST_F(SimChirpTest, CachedReReadIsFasterThanColdRead) {
  // First read of a large file pays disk time; the second is served from
  // the 512 MB buffer cache and is limited only by the network.
  SimChirpServer server(cluster_, SimChirpServer::Options{});
  ASSERT_TRUE(server.backend().preload_file("/big", 50 << 20).ok());
  int client_node = cluster_.add_node();
  SimChirpClient client(cluster_, client_node, server, "node1");

  Nanos cold = 0, warm = 0;
  spawn(engine_, [](SimChirpClient& c, Engine& e, Nanos* cold_out,
                    Nanos* warm_out) -> Task<void> {
    CO_REQUIRE((co_await c.connect()).ok());
    auto fd = co_await c.open("/big", flags_of("r"), 0);
    CO_REQUIRE(fd.ok());
    Nanos start = e.now();
    for (uint64_t off = 0; off < (50u << 20); off += 1 << 20) {
      CO_REQUIRE((co_await c.pread(fd.value(), 1 << 20, (int64_t)off)).ok());
    }
    *cold_out = e.now() - start;
    start = e.now();
    for (uint64_t off = 0; off < (50u << 20); off += 1 << 20) {
      CO_REQUIRE((co_await c.pread(fd.value(), 1 << 20, (int64_t)off)).ok());
    }
    *warm_out = e.now() - start;
  }(client, engine_, &cold, &warm));
  engine_.run();

  // Cold: ~50 MB at 10 MB/s disk ≈ 5 s. Warm: ~50 MB at ~112 MB/s net ≈ 0.45 s.
  EXPECT_GT(cold, 4 * kSecond);
  EXPECT_LT(warm, kSecond);
  EXPECT_GT(cold, 5 * warm);
}

TEST_F(SimChirpTest, TwoClientsShareOneServersPort) {
  // Two clients reading cache-hot data from one server split its ~112 MB/s
  // port; each sees roughly half.
  SimChirpServer server(cluster_, SimChirpServer::Options{});
  ASSERT_TRUE(server.backend().preload_file("/hot", 16 << 20).ok());
  // Warm the cache.
  {
    auto data = server.backend().read_file("/hot");
    ASSERT_TRUE(data.ok());
    server.backend().take_completion();
  }

  std::vector<std::unique_ptr<SimChirpClient>> clients;
  std::vector<Nanos> finish(2);
  for (int i = 0; i < 2; i++) {
    int node = cluster_.add_node();
    clients.push_back(std::make_unique<SimChirpClient>(
        cluster_, node, server, "node" + std::to_string(i)));
    spawn(engine_, [](SimChirpClient& c, Engine& e, Nanos* out) -> Task<void> {
      CO_REQUIRE((co_await c.connect()).ok());
      auto fd = co_await c.open("/hot", flags_of("r"), 0);
      CO_REQUIRE(fd.ok());
      for (uint64_t off = 0; off < (16u << 20); off += 1 << 20) {
        CO_REQUIRE((co_await c.pread(fd.value(), 1 << 20, (int64_t)off)).ok());
      }
      *out = e.now();
    }(*clients.back(), engine_, &finish[static_cast<size_t>(i)]));
  }
  engine_.run();

  // 32 MB total through one ~112 MB/s port ≈ 0.29 s minimum.
  double expected_s = 32.0 / 112.0;
  EXPECT_GT(finish[0], static_cast<Nanos>(expected_s * 0.8 * 1e9));
  // And both clients finish near each other (fair sharing).
  double ratio =
      static_cast<double>(finish[0]) / static_cast<double>(finish[1]);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST_F(SimChirpTest, SimBackendDamageInjectsSilentLoss) {
  SimChirpServer server(cluster_, SimChirpServer::Options{});
  ASSERT_TRUE(server.backend().preload_file("/victim", 1000).ok());
  EXPECT_TRUE(server.backend().stat("/victim").ok());
  server.backend().damage("/victim");
  EXPECT_EQ(server.backend().stat("/victim").code(), ENOENT);
}

Nanos run_deterministic_scenario() {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  SimChirpServer server(cluster, SimChirpServer::Options{});
  EXPECT_TRUE(server.backend().preload_file("/f", 8 << 20).ok());
  int node = cluster.add_node();
  SimChirpClient client(cluster, node, server, "node1");
  spawn(engine, [](SimChirpClient& c) -> Task<void> {
    CO_REQUIRE((co_await c.connect()).ok());
    auto fd = co_await c.open("/f", flags_of("r"), 0);
    CO_REQUIRE(fd.ok());
    for (uint64_t off = 0; off < (8u << 20); off += 1 << 20) {
      CO_REQUIRE((co_await c.pread(fd.value(), 1 << 20, (int64_t)off)).ok());
    }
  }(client));
  return engine.run();
}

TEST_F(SimChirpTest, DeterministicAcrossRuns) {
  Nanos first = run_deterministic_scenario();
  Nanos second = run_deterministic_scenario();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0);
}

}  // namespace
}  // namespace tss::sim
