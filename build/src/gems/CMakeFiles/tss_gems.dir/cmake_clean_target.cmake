file(REMOVE_RECURSE
  "libtss_gems.a"
)
