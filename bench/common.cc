#include "bench/common.h"

#include <memory>

#include "sim/engine.h"

namespace tss::bench {

namespace {

using sim::Cluster;
using sim::Engine;
using sim::SimChirpClient;
using sim::SimChirpServer;
using sim::Task;

chirp::OpenFlags read_flags() { return chirp::OpenFlags::parse("r").value(); }

// One client's workload: `reads` random whole-file reads through the DSFS
// protocol sequence (stub getfile on the directory server, then open /
// pread loop / close on the data server).
Task<void> dsfs_client(Engine& engine, std::vector<SimChirpClient*> conns,
                       int dir_server_index, int num_files, uint64_t file_bytes,
                       int reads, uint64_t seed, uint64_t* bytes_out,
                       obs::Histogram* read_latency) {
  Rng rng(seed);
  for (SimChirpClient* conn : conns) {
    auto connected = co_await conn->connect();
    if (!connected.ok()) co_return;
  }
  constexpr uint64_t kReadChunk = 1 << 20;
  for (int r = 0; r < reads; r++) {
    int file = static_cast<int>(rng.below(static_cast<uint64_t>(num_files)));
    Nanos read_start = engine.now();
    // Stub fetch from the directory server.
    auto stub_text = co_await conns[static_cast<size_t>(dir_server_index)]
                         ->getfile("/tree/file" + std::to_string(file));
    if (!stub_text.ok()) co_return;
    auto stub = fs::Stub::parse(stub_text.value());
    if (!stub.ok()) co_return;
    int data_server = std::stoi(stub.value().server.substr(6));  // "server<i>"

    // Direct access to the data server.
    auto fd = co_await conns[static_cast<size_t>(data_server)]->open(
        stub.value().data_path, read_flags(), 0);
    if (!fd.ok()) co_return;
    uint64_t offset = 0;
    while (true) {
      uint64_t want = std::min(kReadChunk, file_bytes - offset);
      if (want == 0) break;
      auto n = co_await conns[static_cast<size_t>(data_server)]->pread(
          fd.value(), want, static_cast<int64_t>(offset));
      if (!n.ok() || n.value() == 0) break;
      offset += n.value();
      *bytes_out += n.value();
    }
    auto closed =
        co_await conns[static_cast<size_t>(data_server)]->close_fd(fd.value());
    (void)closed;
    read_latency->record(engine.now() - read_start);
  }
}

}  // namespace

DsfsScalingResult run_dsfs_scaling(const DsfsScalingParams& params) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});

  // Servers: index 0 is the DSFS directory server — either double-duty
  // (also holding data) or dedicated, per params.dedicated_directory.
  std::vector<std::unique_ptr<SimChirpServer>> servers;
  int total_servers =
      params.num_servers + (params.dedicated_directory ? 1 : 0);
  for (int s = 0; s < total_servers; s++) {
    SimChirpServer::Options options;
    options.backend.cache_bytes = params.cache_bytes;
    servers.push_back(std::make_unique<SimChirpServer>(cluster, options));
  }
  int first_data = params.dedicated_directory ? 1 : 0;

  // Populate: stubs on the directory server (real content), data files
  // round-robin across servers (synthetic, no timing during setup).
  auto ignore = servers[0]->backend().mkdir("/tree", 0755);
  (void)ignore;
  servers[0]->backend().take_completion();
  for (int f = 0; f < params.num_files; f++) {
    int owner = first_data + f % params.num_servers;
    std::string data_path = "/vol/data" + std::to_string(f);
    fs::Stub stub{"server" + std::to_string(owner), data_path};
    auto put = servers[0]->backend().write_file(
        "/tree/file" + std::to_string(f), stub.serialize(), 0644);
    (void)put;
    auto preload = servers[static_cast<size_t>(owner)]->backend().preload_file(
        data_path, params.file_bytes);
    (void)preload;
  }
  for (auto& server : servers) server->backend().take_completion();
  if (params.warm_cache) {
    for (int f = 0; f < params.num_files; f++) {
      int owner = first_data + f % params.num_servers;
      auto warmed = servers[static_cast<size_t>(owner)]->backend().warm_file(
          "/vol/data" + std::to_string(f));
      (void)warmed;
    }
  }

  // Clients: one node each, one connection per server per client. Every
  // logical read's engine-time latency lands in one shared histogram, the
  // same machinery live servers publish through the stats RPC.
  obs::Registry registry;
  obs::Histogram* read_latency = registry.histogram("dsfs.read.latency");
  std::vector<std::unique_ptr<SimChirpClient>> connections;
  std::vector<uint64_t> bytes(static_cast<size_t>(params.num_clients), 0);
  for (int c = 0; c < params.num_clients; c++) {
    int node = cluster.add_node();
    std::vector<SimChirpClient*> conns;
    for (int s = 0; s < total_servers; s++) {
      connections.push_back(std::make_unique<SimChirpClient>(
          cluster, node, *servers[static_cast<size_t>(s)],
          "client" + std::to_string(c)));
      conns.push_back(connections.back().get());
    }
    spawn(engine,
          dsfs_client(engine, conns, /*dir_server_index=*/0, params.num_files,
                      params.file_bytes, params.reads_per_client,
                      params.seed + static_cast<uint64_t>(c) * 7919,
                      &bytes[static_cast<size_t>(c)], read_latency));
  }

  Nanos end = engine.run();

  DsfsScalingResult result;
  for (uint64_t b : bytes) result.bytes_read += b;
  result.seconds = static_cast<double>(end) / 1e9;
  result.mb_per_sec =
      static_cast<double>(result.bytes_read) / 1e6 / result.seconds;
  for (auto& server : servers) {
    result.cache_hits += server->backend().cache().hits();
    result.cache_misses += server->backend().cache().misses();
  }
  obs::Histogram::Snapshot lat = read_latency->snapshot();
  result.reads_completed = lat.count;
  result.read_p50 = lat.quantile(0.50);
  result.read_p95 = lat.quantile(0.95);
  result.read_p99 = lat.quantile(0.99);
  return result;
}

}  // namespace tss::bench
