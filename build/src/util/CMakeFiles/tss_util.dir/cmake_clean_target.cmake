file(REMOVE_RECURSE
  "libtss_util.a"
)
