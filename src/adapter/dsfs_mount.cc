#include "adapter/dsfs_mount.h"

#include "fs/subtree.h"

#include "util/path.h"
#include "util/strings.h"

namespace tss::adapter {

namespace {
constexpr const char* kManifestName = ".tssvol";
constexpr const char* kTreeName = "tree";
}  // namespace

std::string VolumeManifest::serialize() const {
  std::string out = "tssvol v1\n";
  out += "datadir " + url_encode(data_dir) + "\n";
  for (const auto& [name, endpoint] : servers) {
    out += "server " + url_encode(name) + " " + endpoint.to_string() + "\n";
  }
  return out;
}

Result<VolumeManifest> VolumeManifest::parse(std::string_view text) {
  auto lines = split(text, '\n');
  if (lines.empty() || trim(lines[0]) != "tssvol v1") {
    return Error(EINVAL, "not a tssvol manifest");
  }
  VolumeManifest manifest;
  for (size_t i = 1; i < lines.size(); i++) {
    auto words = split_words(lines[i]);
    if (words.empty()) continue;
    if (words[0] == "datadir" && words.size() >= 2) {
      manifest.data_dir = url_decode(words[1]);
    } else if (words[0] == "server" && words.size() >= 3) {
      TSS_ASSIGN_OR_RETURN(net::Endpoint endpoint,
                           net::Endpoint::parse(words[2]));
      manifest.servers[url_decode(words[1])] = endpoint;
    } else {
      return Error(EINVAL, "bad manifest line: " + lines[i]);
    }
  }
  if (manifest.servers.empty()) {
    return Error(EINVAL, "manifest lists no data servers");
  }
  if (manifest.data_dir.empty()) {
    return Error(EINVAL, "manifest missing datadir");
  }
  return manifest;
}

namespace {

std::unique_ptr<fs::CfsFs> connect_cfs(const net::Endpoint& endpoint,
                                       const DsfsMountOptions& options) {
  fs::CfsFs::Options cfs_options;
  cfs_options.retry = options.retry;
  return std::make_unique<fs::CfsFs>(
      fs::chirp_connector(endpoint, options.credentials, options.io_timeout),
      cfs_options);
}

}  // namespace

Result<void> create_volume(const net::Endpoint& directory_server,
                           const std::string& volume,
                           const std::map<std::string, net::Endpoint>& servers,
                           const DsfsMountOptions& options) {
  if (servers.empty()) return Error(EINVAL, "volume needs data servers");
  std::string volume_root = path::sanitize("/" + volume);

  VolumeManifest manifest;
  manifest.servers = servers;
  manifest.data_dir = path::join(volume_root, "data");

  auto directory = connect_cfs(directory_server, options);
  TSS_RETURN_IF_ERROR(fs::mkdir_recursive(*directory, volume_root));
  TSS_RETURN_IF_ERROR(
      fs::mkdir_recursive(*directory, path::join(volume_root, kTreeName)));
  TSS_RETURN_IF_ERROR(directory->write_file(
      path::join(volume_root, kManifestName), manifest.serialize()));

  for (const auto& [name, endpoint] : servers) {
    auto data = connect_cfs(endpoint, options);
    TSS_RETURN_IF_ERROR(fs::mkdir_recursive(*data, manifest.data_dir));
  }
  return Result<void>::success();
}

Result<std::unique_ptr<DsfsMount>> mount_volume(
    const net::Endpoint& directory_server, const std::string& volume,
    const DsfsMountOptions& options) {
  std::string volume_root = path::sanitize("/" + volume);
  auto mount = std::make_unique<DsfsMount>();
  mount->directory_mount = connect_cfs(directory_server, options);

  TSS_ASSIGN_OR_RETURN(
      std::string manifest_text,
      mount->directory_mount->read_file(
          path::join(volume_root, kManifestName)));
  TSS_ASSIGN_OR_RETURN(VolumeManifest manifest,
                       VolumeManifest::parse(manifest_text));

  std::map<std::string, fs::FileSystem*> data_servers;
  for (const auto& [name, endpoint] : manifest.servers) {
    mount->data_mounts.push_back(connect_cfs(endpoint, options));
    data_servers[name] = mount->data_mounts.back().get();
  }

  // The metadata filesystem is the volume's tree directory on the
  // directory server, presented as its own root via SubtreeFs.
  mount->metadata_view = std::make_unique<fs::SubtreeFs>(
      mount->directory_mount.get(), path::join(volume_root, kTreeName));

  fs::DistFs::Options dist_options;
  dist_options.volume = manifest.data_dir;
  mount->dsfs = std::make_unique<fs::DistFs>(mount->metadata_view.get(),
                                             data_servers, dist_options);
  return mount;
}

}  // namespace tss::adapter
