#include "chirp/client.h"

#include <cerrno>

#include "util/checksum.h"
#include "util/strings.h"

namespace tss::chirp {

Result<Client> Client::connect(const net::Endpoint& server, Options options) {
  TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                       net::TcpSocket::connect(server, options.timeout));
  Client client(net::LineStream(std::move(sock), options.timeout), server);
  obs::Registry* metrics =
      options.metrics ? options.metrics : &obs::Registry::global();
  client.rpc_latency_ = metrics->histogram("chirp.client.rpc_latency");
  client.rpcs_ = metrics->counter("chirp.client.rpcs");
  client.rpc_errors_ = metrics->counter("chirp.client.rpc_errors");
  client.integrity_mismatches_ =
      metrics->counter("chirp.client.integrity.mismatch");
  // Deflections received from cooperative-cache servers; named with the
  // fs.cache.* family because this is the client half of that feature.
  client.redirects_ = metrics->counter("fs.cache.redirect");
  client.options_ = options;
  Request version;
  version.op = Op::kVersion;
  version.version = kProtocolVersion;
  if (options.integrity) version.caps.push_back(kCapChecksum);
  if (options.cooperative) version.caps.push_back(kCapRedirect);
  if (options.alloc_ops) version.caps.push_back(kCapAlloc);
  TSS_ASSIGN_OR_RETURN(Response resp, client.roundtrip(version));
  if (!resp.ok()) return Error(resp.err, resp.message);
  // args[0] is the server's version; capability echoes follow. An old server
  // simply never echoes, leaving the feature off for the session.
  for (size_t i = 1; i < resp.args.size(); i++) {
    if (resp.args[i] == kCapChecksum) client.checksum_ = true;
    if (resp.args[i] == kCapAlloc) client.alloc_ = true;
  }
  return client;
}

Error Client::integrity_error(const char* what) {
  if (integrity_mismatches_) integrity_mismatches_->add();
  return Error(EBADMSG, std::string(what) + " checksum mismatch");
}

Result<void> Client::verify_sum_trailer(uint64_t local_digest,
                                        const char* what) {
  TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
  TSS_ASSIGN_OR_RETURN(uint64_t wire_digest, parse_sum_line(line));
  if (wire_digest != local_digest) return integrity_error(what);
  return Result<void>::success();
}

Result<Response> Client::roundtrip(const Request& request,
                                   const void* payload,
                                   const std::string* trailer) {
  // Client-side view of every round trip: wall time from first request byte
  // to the response line, plus rpc/transport-error counters. A protocol-level
  // "error <errno>" reply is the server's answer, not a transport failure, so
  // it does not count as an rpc_error here.
  Nanos start = rpc_latency_ ? RealClock::instance().now() : 0;
  auto finish = [this, start](bool transport_ok) {
    if (!rpc_latency_) return;
    rpc_latency_->record(RealClock::instance().now() - start);
    rpcs_->add();
    if (!transport_ok) rpc_errors_->add();
  };
  stream_.write_line(encode_request(request));
  uint64_t body = request.payload_len();
  if (body > 0 && !payload) return Error(EINVAL, "request requires payload");
  // Header, payload, and trailer leave in one scatter-gather write — the
  // payload is never copied into the stream buffer.
  std::string tail;
  if (trailer) tail = *trailer + "\n";
  auto rc = body > 0 ? stream_.send_with_blob(payload,
                                              static_cast<size_t>(body), tail)
                     : stream_.send_with_blob(nullptr, 0, tail);
  if (!rc.ok()) {
    finish(false);
    return std::move(rc).take_error();
  }
  auto line = stream_.read_line();
  if (!line.ok()) {
    finish(false);
    return std::move(line).take_error();
  }
  auto resp = parse_response_line(line.value());
  // A redirect reply is legal only as a getfile answer to a session that
  // offered the capability. Anywhere else — another op, or a server we never
  // asked — it is a protocol violation: fail typed, never treat the line as
  // success or fall back to stale data.
  if (resp.ok() && resp.value().redirect &&
      (!options_.cooperative || request.op != Op::kGetfile)) {
    finish(false);
    return Error(EPROTO, "unexpected redirect reply");
  }
  finish(resp.ok());
  return resp;
}

Error Client::redirect_error(const Redirect& hint) {
  return Error(EREMOTE, "redirected to " + hint.host + ":" +
                            std::to_string(hint.port));
}

void Client::remember_redirect(const std::string& path, const Redirect& hint) {
  if (redirects_) redirects_->add();
  last_redirect_ = hint;
  leases_[path] = Lease{
      hint, RealClock::instance().now() +
                static_cast<Nanos>(hint.ttl_ms) * kMillisecond};
}

void Client::drop_lease(const std::string& path) { leases_.erase(path); }

Client* Client::lease_peer(const std::string& path) {
  if (!options_.redirect_dialer) return nullptr;
  auto it = leases_.find(path);
  if (it == leases_.end()) return nullptr;
  if (RealClock::instance().now() >= it->second.expiry) {
    leases_.erase(it);
    return nullptr;
  }
  const Redirect& hint = it->second.hint;
  std::string key = hint.host + ":" + std::to_string(hint.port);
  auto pit = peers_.find(key);
  if (pit == peers_.end()) {
    auto dialed =
        options_.redirect_dialer(net::Endpoint{hint.host, hint.port});
    if (!dialed.ok()) {
      leases_.erase(it);
      return nullptr;
    }
    pit = peers_
              .emplace(key,
                       std::make_unique<Client>(std::move(dialed).value()))
              .first;
  }
  if (!pit->second->connected()) {
    peers_.erase(pit);
    return nullptr;
  }
  return pit->second.get();
}

Result<auth::Subject> Client::authenticate(
    auth::ClientCredential& credential) {
  Request req;
  req.op = Op::kAuth;
  req.auth_method = credential.method();
  TSS_ASSIGN_OR_RETURN(req.auth_arg, credential.hello_arg());
  stream_.write_line(encode_request(req));
  TSS_RETURN_IF_ERROR(stream_.flush());

  // Zero or more challenge rounds, then ok/error.
  while (true) {
    TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
    if (starts_with(line, "challenge ")) {
      std::string data = url_decode(line.substr(10));
      TSS_ASSIGN_OR_RETURN(std::string answer, credential.answer(data));
      TSS_RETURN_IF_ERROR(stream_.send_line(url_encode(answer)));
      continue;
    }
    TSS_ASSIGN_OR_RETURN(Response resp, parse_response_line(line));
    if (!resp.ok()) return Error(resp.err, resp.message);
    if (resp.args.empty()) return Error(EPROTO, "auth ok without subject");
    return auth::Subject::parse(url_decode(resp.args[0]));
  }
}

Result<auth::Subject> Client::authenticate_any(
    const std::vector<auth::ClientCredential*>& credentials) {
  if (credentials.empty()) return Error(EACCES, "no credentials offered");
  // Every method's failure reason is aggregated into the final error, so
  // the caller learns *why* each method was refused, not just that all were.
  std::string detail;
  int last_code = EACCES;
  size_t attempted = 0;
  for (auth::ClientCredential* credential : credentials) {
    auto subject = authenticate(*credential);
    if (subject.ok()) return subject;
    Error err = std::move(subject).take_error();
    last_code = err.code;
    attempted++;
    if (!detail.empty()) detail += "; ";
    detail += credential->method() + ": " + err.to_string();
    // A transport error ends the attempt sequence; an auth refusal does not.
    if (err.code == EPIPE || err.code == ECONNRESET ||
        err.code == ETIMEDOUT) {
      if (attempted < credentials.size()) {
        detail += "; " +
                  std::to_string(credentials.size() - attempted) +
                  " method(s) not attempted (connection lost)";
      }
      break;
    }
  }
  return Error(last_code, "all authentication methods failed: " + detail);
}

namespace {
Result<int64_t> ok_i64(const Response& resp, size_t index) {
  if (!resp.ok()) return Error(resp.err, resp.message);
  if (index >= resp.args.size()) return Error(EPROTO, "short ok reply");
  auto n = parse_i64(resp.args[index]);
  if (!n) return Error(EPROTO, "bad integer in reply");
  return *n;
}
Result<void> ok_void(const Response& resp) {
  if (!resp.ok()) return Error(resp.err, resp.message);
  return Result<void>::success();
}
}  // namespace

Result<int64_t> Client::open(const std::string& path, const OpenFlags& flags,
                             uint32_t mode) {
  Request req;
  req.op = Op::kOpen;
  req.path = path;
  req.flags = flags;
  req.mode = mode;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_i64(resp, 0);
}

Result<size_t> Client::pread(int64_t fd, void* data, size_t size,
                             int64_t offset) {
  Request req;
  req.op = Op::kPread;
  req.fd = fd;
  req.length = size;
  req.offset = offset;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  TSS_ASSIGN_OR_RETURN(int64_t n, ok_i64(resp, 0));
  if (n < 0 || static_cast<size_t>(n) > size) {
    return Error(EPROTO, "bad pread length");
  }
  if (n > 0) {
    TSS_RETURN_IF_ERROR(stream_.read_blob(data, static_cast<size_t>(n)));
  }
  if (checksum_) {
    // A negotiated peer that omits or garbles the digest is breaking the
    // protocol (EPROTO); a well-formed digest that disagrees with the bytes
    // we received is data corruption (EBADMSG).
    if (resp.args.size() < 2) return Error(EPROTO, "missing pread checksum");
    auto wire_digest = hex_to_hash(resp.args[1]);
    if (!wire_digest) {
      return Error(EPROTO, "bad pread checksum token: " + resp.args[1]);
    }
    if (*wire_digest != fnv1a64(data, static_cast<size_t>(n))) {
      return integrity_error("pread");
    }
  }
  return static_cast<size_t>(n);
}

Result<size_t> Client::pwrite(int64_t fd, const void* data, size_t size,
                              int64_t offset) {
  Request req;
  req.op = Op::kPwrite;
  req.fd = fd;
  req.length = size;
  req.offset = offset;
  if (checksum_) {
    req.has_checksum = true;
    req.checksum = fnv1a64(data, size);
  }
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req, data));
  TSS_ASSIGN_OR_RETURN(int64_t n, ok_i64(resp, 0));
  return static_cast<size_t>(n);
}

Result<void> Client::fsync(int64_t fd) {
  Request req;
  req.op = Op::kFsync;
  req.fd = fd;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::close_fd(int64_t fd) {
  Request req;
  req.op = Op::kClose;
  req.fd = fd;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<StatInfo> Client::stat(const std::string& path) {
  Request req;
  req.op = Op::kStat;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (!resp.ok()) return Error(resp.err, resp.message);
  return StatInfo::parse(resp.args, 0);
}

Result<StatInfo> Client::fstat(int64_t fd) {
  Request req;
  req.op = Op::kFstat;
  req.fd = fd;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (!resp.ok()) return Error(resp.err, resp.message);
  return StatInfo::parse(resp.args, 0);
}

Result<void> Client::unlink(const std::string& path) {
  Request req;
  req.op = Op::kUnlink;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::rename(const std::string& from, const std::string& to) {
  Request req;
  req.op = Op::kRename;
  req.path = from;
  req.path2 = to;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::mkdir(const std::string& path, uint32_t mode) {
  Request req;
  req.op = Op::kMkdir;
  req.path = path;
  req.mode = mode;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::rmdir(const std::string& path) {
  Request req;
  req.op = Op::kRmdir;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::truncate(const std::string& path, uint64_t size) {
  Request req;
  req.op = Op::kTruncate;
  req.path = path;
  req.length = size;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<void> Client::mkalloc(const std::string& path, uint64_t limit) {
  Request req;
  req.op = Op::kMkalloc;
  req.path = path;
  req.length = limit;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<AllocInfo> Client::lsalloc(const std::string& path) {
  Request req;
  req.op = Op::kLsalloc;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (!resp.ok()) return Error(resp.err, resp.message);
  if (resp.args.size() < 3) return Error(EPROTO, "short lsalloc reply");
  auto limit = parse_u64(resp.args[1]);
  auto inuse = parse_u64(resp.args[2]);
  if (!limit || !inuse) return Error(EPROTO, "bad lsalloc reply");
  AllocInfo info;
  info.root = url_decode(resp.args[0]);
  info.limit = *limit;
  info.inuse = *inuse;
  return info;
}

Result<std::vector<DirEntry>> Client::getdir(const std::string& path) {
  Request req;
  req.op = Op::kGetdir;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  TSS_ASSIGN_OR_RETURN(int64_t count, ok_i64(resp, 0));
  std::vector<DirEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; i++) {
    TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
    TSS_ASSIGN_OR_RETURN(DirEntry entry, parse_dirent(line));
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<std::string> Client::getfile(const std::string& path) {
  // A live redirect lease sends us straight to the sibling cache; a peer
  // failure falls back to the origin (the buffered fetch consumed nothing,
  // so the retry is safe).
  if (Client* peer = lease_peer(path)) {
    auto via = peer->getfile(path);
    if (via.ok()) return via;
    drop_lease(path);
  }
  for (int hop = 0;; hop++) {
    Request req;
    req.op = Op::kGetfile;
    req.path = path;
    TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
    if (resp.ok() && resp.redirect) {
      remember_redirect(path, *resp.redirect);
      if (options_.redirect_dialer && hop < options_.max_redirect_hops) {
        if (Client* peer = lease_peer(path)) {
          auto via = peer->getfile(path);
          if (via.ok()) return via;
          drop_lease(path);
        }
        continue;  // ask the origin again; the policy rotates peers
      }
      return redirect_error(*resp.redirect);
    }
    TSS_ASSIGN_OR_RETURN(int64_t size, ok_i64(resp, 0));
    std::string data;
    data.resize(static_cast<size_t>(size));
    if (size > 0) {
      TSS_RETURN_IF_ERROR(stream_.read_blob(data.data(), data.size()));
    }
    if (checksum_) {
      TSS_RETURN_IF_ERROR(verify_sum_trailer(fnv1a64(data), "getfile"));
    }
    return data;
  }
}

Result<void> Client::putfile(const std::string& path, std::string_view data,
                             uint32_t mode) {
  Request req;
  req.op = Op::kPutfile;
  req.path = path;
  req.mode = mode;
  req.length = data.size();
  std::string trailer;
  if (checksum_) trailer = encode_sum_line(fnv1a64(data));
  TSS_ASSIGN_OR_RETURN(
      Response resp,
      roundtrip(req, data.data(), checksum_ ? &trailer : nullptr));
  return ok_void(resp);
}

Result<uint64_t> Client::getfile_to(const std::string& path,
                                    const Sink& sink) {
  // Streamed fetches cannot retry once the sink has consumed bytes, so a
  // peer's verdict is final here: follow the lease or the hint and return
  // whatever the peer says; only a hint we cannot follow surfaces EREMOTE.
  if (Client* peer = lease_peer(path)) return peer->getfile_to(path, sink);
  Request req;
  req.op = Op::kGetfile;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (resp.ok() && resp.redirect) {
    remember_redirect(path, *resp.redirect);
    if (Client* peer = lease_peer(path)) return peer->getfile_to(path, sink);
    return redirect_error(*resp.redirect);
  }
  TSS_ASSIGN_OR_RETURN(int64_t size, ok_i64(resp, 0));
  uint64_t remaining = static_cast<uint64_t>(size);
  std::string buffer;
  buffer.resize(256 * 1024);
  Fnv1a64 digest;
  while (remaining > 0) {
    size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(remaining, buffer.size()));
    TSS_RETURN_IF_ERROR(stream_.read_blob(buffer.data(), chunk));
    if (checksum_) digest.update(buffer.data(), chunk);
    TSS_RETURN_IF_ERROR(sink(std::string_view(buffer.data(), chunk)));
    remaining -= chunk;
  }
  if (checksum_) {
    // The sink already consumed the bytes; an EBADMSG here tells the caller
    // to discard whatever it assembled from them.
    TSS_RETURN_IF_ERROR(verify_sum_trailer(digest.digest(), "getfile"));
  }
  return static_cast<uint64_t>(size);
}

Result<void> Client::putfile_from(const std::string& path, uint64_t size,
                                  const Source& source, uint32_t mode) {
  Request req;
  req.op = Op::kPutfile;
  req.path = path;
  req.mode = mode;
  req.length = size;
  stream_.write_line(encode_request(req));
  std::string buffer;
  buffer.resize(256 * 1024);
  uint64_t remaining = size;
  Fnv1a64 digest;
  while (remaining > 0) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(remaining, buffer.size()));
    TSS_ASSIGN_OR_RETURN(size_t got, source(buffer.data(), want));
    if (got == 0 || got > want) {
      // The payload length is already promised on the wire; a short source
      // would desynchronize the stream, so poison the connection.
      stream_.close();
      return Error(EIO, "putfile source ended prematurely");
    }
    if (checksum_) digest.update(buffer.data(), got);
    TSS_RETURN_IF_ERROR(stream_.send_with_blob(buffer.data(), got));
    remaining -= got;
  }
  if (checksum_) stream_.write_line(encode_sum_line(digest.digest()));
  TSS_RETURN_IF_ERROR(stream_.flush());
  TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
  TSS_ASSIGN_OR_RETURN(Response resp, parse_response_line(line));
  return ok_void(resp);
}

Result<std::string> Client::getacl(const std::string& path) {
  Request req;
  req.op = Op::kGetacl;
  req.path = path;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  TSS_ASSIGN_OR_RETURN(int64_t size, ok_i64(resp, 0));
  std::string text;
  text.resize(static_cast<size_t>(size));
  if (size > 0) {
    TSS_RETURN_IF_ERROR(stream_.read_blob(text.data(), text.size()));
  }
  return text;
}

Result<void> Client::setacl(const std::string& path,
                            const std::string& subject,
                            const std::string& rights) {
  Request req;
  req.op = Op::kSetacl;
  req.path = path;
  req.acl_subject = subject;
  req.acl_rights = rights;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  return ok_void(resp);
}

Result<std::string> Client::whoami() {
  Request req;
  req.op = Op::kWhoami;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (!resp.ok()) return Error(resp.err, resp.message);
  if (resp.args.empty()) return Error(EPROTO, "short whoami reply");
  return url_decode(resp.args[0]);
}

Result<std::string> Client::stats() {
  Request req;
  req.op = Op::kStats;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  TSS_ASSIGN_OR_RETURN(int64_t size, ok_i64(resp, 0));
  std::string text;
  text.resize(static_cast<size_t>(size));
  if (size > 0) {
    TSS_RETURN_IF_ERROR(stream_.read_blob(text.data(), text.size()));
  }
  return text;
}

Result<std::pair<uint64_t, uint64_t>> Client::statfs() {
  Request req;
  req.op = Op::kStatfs;
  TSS_ASSIGN_OR_RETURN(Response resp, roundtrip(req));
  if (!resp.ok()) return Error(resp.err, resp.message);
  if (resp.args.size() < 2) return Error(EPROTO, "short statfs reply");
  auto total = parse_u64(resp.args[0]);
  auto free_bytes = parse_u64(resp.args[1]);
  if (!total || !free_bytes) return Error(EPROTO, "bad statfs reply");
  return std::make_pair(*total, *free_bytes);
}

}  // namespace tss::chirp
