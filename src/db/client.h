// Database client for the DSDB: thin blocking wrapper over the db protocol.
#pragma once

#include <string>
#include <vector>

#include "db/table.h"
#include "net/line_stream.h"

namespace tss::db {

class Client {
 public:
  struct Options {
    Nanos timeout = 30 * kSecond;
  };

  static Result<Client> connect(const net::Endpoint& server, Options options);
  static Result<Client> connect(const net::Endpoint& server) {
    return connect(server, Options{});
  }

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  bool connected() const { return stream_.valid(); }

  Result<void> mktable(const std::string& table,
                       const std::vector<std::string>& indexed_fields);
  Result<void> put(const std::string& table, const Record& record);
  Result<Record> get(const std::string& table, const std::string& id);
  Result<void> del(const std::string& table, const std::string& id);
  Result<std::vector<Record>> query(const std::string& table,
                                    const std::string& field,
                                    const std::string& value);
  Result<std::vector<Record>> scan(const std::string& table);
  Result<uint64_t> count(const std::string& table);
  Result<void> sync();

 private:
  explicit Client(net::LineStream stream) : stream_(std::move(stream)) {}
  Result<std::vector<std::string>> roundtrip(const std::string& line);
  Result<std::vector<Record>> read_records(uint64_t count);

  net::LineStream stream_;
};

}  // namespace tss::db
