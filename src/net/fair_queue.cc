#include "net/fair_queue.h"

#include <algorithm>
#include <utility>

namespace tss::net {

FairQueue::FairQueue(Options options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    const std::string& p = options_.metric_prefix;
    granted_ = options_.metrics->counter(p + ".granted");
    queued_ctr_ = options_.metrics->counter(p + ".queued");
    rejected_ = options_.metrics->counter(p + ".rejected");
    active_gauge_ = options_.metrics->gauge(p + ".active");
    waiting_gauge_ = options_.metrics->gauge(p + ".waiting");
  }
}

FairQueue::~FairQueue() {
  // Drop all queued work without running it. The closures may hold RAII
  // guards whose destructors call finish(); with stopped_ set those calls
  // no-op, and the destruction happens outside the lock.
  std::map<std::string, Key> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    doomed.swap(keys_);
    ring_.clear();
    waiting_ = 0;
  }
}

uint64_t FairQueue::weight_of(const std::string& key) const {
  auto it = options_.weights.find(key);
  uint64_t w = it != options_.weights.end() ? it->second
                                            : options_.default_weight;
  return std::max<uint64_t>(w, 1);
}

FairQueue::Verdict FairQueue::admit(const std::string& key, uint64_t cost,
                                    std::function<void()> resume) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopped_ || options_.max_active <= 0) return Verdict::kRun;
  auto it = keys_.find(key);
  bool has_backlog = it != keys_.end() && !it->second.waiters.empty();
  // Free slots imply no backlog anywhere (finish() drains eagerly), so
  // bypassing the queue here cannot overtake queued work for this key.
  if (active_ < options_.max_active && !has_backlog) {
    active_++;
    if (granted_ != nullptr) granted_->add(1);
    if (active_gauge_ != nullptr) active_gauge_->set(active_);
    return Verdict::kRun;
  }
  if (it == keys_.end()) {
    it = keys_.emplace(key, Key{{}, 0, weight_of(key)}).first;
  }
  Key& k = it->second;
  if (k.waiters.size() >=
      static_cast<size_t>(std::max(options_.max_queued_per_key, 1))) {
    if (rejected_ != nullptr) rejected_->add(1);
    return Verdict::kRejected;
  }
  if (k.waiters.empty()) ring_.push_back(key);
  k.waiters.push_back(Waiter{std::max<uint64_t>(cost, 1), std::move(resume)});
  waiting_++;
  if (queued_ctr_ != nullptr) queued_ctr_->add(1);
  if (waiting_gauge_ != nullptr) {
    waiting_gauge_->set(static_cast<int64_t>(waiting_));
  }
  return Verdict::kQueued;
}

void FairQueue::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || options_.max_active <= 0) return;
    if (active_ > 0) active_--;
    if (active_gauge_ != nullptr) active_gauge_->set(active_);
  }
  dispatch();
}

void FairQueue::dispatch() {
  std::vector<std::function<void()>> runnable;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || dispatching_) return;
    dispatching_ = true;
    while (active_ < options_.max_active && !ring_.empty()) {
      if (cursor_ >= ring_.size()) cursor_ = 0;
      Key& k = keys_[ring_[cursor_]];
      k.deficit += options_.quantum * k.weight;
      while (!k.waiters.empty() && active_ < options_.max_active &&
             k.deficit >= k.waiters.front().cost) {
        Waiter w = std::move(k.waiters.front());
        k.waiters.pop_front();
        k.deficit -= w.cost;
        active_++;
        waiting_--;
        if (granted_ != nullptr) granted_->add(1);
        runnable.push_back(std::move(w.resume));
      }
      if (k.waiters.empty()) {
        k.deficit = 0;  // an idle key accrues no credit
        ring_.erase(ring_.begin() + static_cast<ptrdiff_t>(cursor_));
      } else {
        cursor_++;
      }
    }
    dispatching_ = false;
    if (active_gauge_ != nullptr) active_gauge_->set(active_);
    if (waiting_gauge_ != nullptr) {
      waiting_gauge_->set(static_cast<int64_t>(waiting_));
    }
  }
  for (auto& r : runnable) r();
}

int FairQueue::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

size_t FairQueue::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

}  // namespace tss::net
