// CachedFs: a cooperative read cache over any FileSystem.
//
// The paper benchmarks with caching disabled (§5: CFS "dispenses with
// buffering and caching"), but a read-heavy hot set served to thousands of
// clients demands the opposite — cctools' GROW-FS serves huge clusters from
// a read-only checksum-cataloged cache, and AliEnFS layers exactly this kind
// of client-side cache under a POSIX view of grid storage. CachedFs is that
// layer, recursive like every other abstraction here: it decorates any
// FileSystem (a CfsFs mount, a LocalFs, a FaultyFs in tests).
//
// What is cached: whole-file content blocks plus the file's metadata
// (StatInfo), keyed by path. A read-only open of a cached path within its
// lease is served entirely from local blocks — zero RPCs to the source. The
// cache is bounded (`capacity_bytes`, LRU eviction) and validating:
//
//  * Fetch: a miss pulls the whole file through source->read_file() — over a
//    CfsFs source that is one getfile, wire-verified end to end when the
//    `checksum` capability is negotiated — and records its FNV-1a64 digest.
//  * Open validation: every cache-served open re-digests the cached blocks
//    against the recorded digest. At-rest rot (a flipped bit in the store)
//    is caught here: counted in fs.integrity.mismatch, the entry is
//    discarded and refetched, and the corrupt bytes are NEVER served.
//  * Lease/TTL: an entry is trusted for `lease_ttl`. Past that, the next
//    open revalidates the metadata against the source (stat: same size,
//    mtime, inode renews the lease; any change refetches).
//  * Invalidation: every mutation through this filesystem (write-opens,
//    pwrite, write_file, unlink, rename, truncate) invalidates the entry
//    immediately — a reader holding an open cached handle falls through to
//    the source rather than serve bytes it knows are stale.
//  * EBADMSG from the source (a wire-integrity failure) bypasses the cache
//    entirely — the open falls through to the source and nothing is cached,
//    so a corrupt fetch can never poison later readers.
//
// Content lives in `store` when one is configured (a LocalFs scratch
// directory — the cache survives as at-rest blocks, and tests can corrupt
// them through a FaultyFs), or in memory otherwise. Either way the digest
// check guards every serve.
//
// Counters (docs/OBSERVABILITY.md): fs.cache.{hit,miss,evict,invalidate,
// bypass} and the fs.cache.bytes gauge; digest failures land in the shared
// fs.integrity.mismatch. The client half of the cooperative story —
// following server `redirect` hints to sibling caches — lives in
// chirp::Client (fs.cache.redirect); see docs/ARCHITECTURE-CLIENT.md.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fs/filesystem.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace tss::fs {

class CachedFs final : public FileSystem {
 public:
  struct Options {
    // Total cached content bound; LRU entries are evicted past it.
    uint64_t capacity_bytes = 256ull << 20;
    // Files larger than this bypass the cache (served straight from the
    // source; whole-file caching of a giant file would evict everything).
    uint64_t max_file_bytes = 16ull << 20;
    // How long an entry is trusted before the next open revalidates its
    // metadata against the source.
    Nanos lease_ttl = 2 * kSecond;
    // At-rest home for cached blocks (one file per cached path). Null keeps
    // blocks in memory. Not owned.
    FileSystem* store = nullptr;
    // Clock for lease arithmetic; null = RealClock. Tests inject a
    // VirtualClock for deterministic expiry.
    Clock* clock = nullptr;
    // fs.cache.* counters and the bytes gauge. Null = the process-wide
    // registry; tests inject their own for exact accounting.
    obs::Registry* metrics = nullptr;
  };

  CachedFs(FileSystem* source, Options options);
  ~CachedFs() override;

  CachedFs(const CachedFs&) = delete;
  CachedFs& operator=(const CachedFs&) = delete;

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;
  using FileSystem::write_file;

  // Drops the entry for `path` (if any); every mutation path calls this.
  // Public so a layer above (the adapter, tests) can invalidate explicitly.
  void invalidate(const std::string& path);
  void invalidate_all();

  // Currently cached content bytes (mirrors the fs.cache.bytes gauge).
  uint64_t cached_bytes() const;

 private:
  friend class CachedFile;
  friend class CacheInvalidatingFile;

  struct Entry {
    StatInfo info;
    uint64_t digest = 0;
    // In-memory blocks (null when store-backed). Immutable once published;
    // concurrent opens share it.
    std::shared_ptr<const std::string> content;
    std::string store_path;  // "" when in-memory
    std::atomic<Nanos> lease_expiry{0};
    std::atomic<bool> invalidated{false};
    uint64_t bytes = 0;
    uint64_t last_use = 0;  // LRU tick; guarded by mutex_
  };

  // Read-only open served (when possible) from validated cached blocks.
  Result<std::unique_ptr<File>> open_cached(const std::string& path,
                                            const OpenFlags& flags,
                                            uint32_t mode);
  // Loads an entry's blocks (store or memory) and verifies the digest.
  // Failure means the entry must be discarded, never served.
  Result<std::shared_ptr<const std::string>> load_validated(
      const std::shared_ptr<Entry>& entry);
  // Fetches from the source and publishes a new entry (unless the path was
  // invalidated while we fetched). Returns the image to serve.
  Result<std::shared_ptr<const std::string>> fetch_and_publish(
      const std::string& path, bool* bypassed);
  // True while a reader may trust the entry's blocks and metadata.
  bool entry_live(const Entry& entry) const;
  void touch(const std::shared_ptr<Entry>& entry);
  // Drops `path` under mutex_; returns true if an entry actually existed.
  bool drop_locked(const std::string& path);
  void evict_over_capacity_locked();
  void update_bytes_gauge_locked();

  FileSystem* source_;
  Options options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  // Per-path invalidation generation: bumped by every invalidation even when
  // no entry exists, so a fetch that raced a mutation is never published.
  std::unordered_map<std::string, uint64_t> gen_;
  uint64_t bytes_ = 0;
  uint64_t tick_ = 0;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evicts_ = nullptr;
  obs::Counter* invalidates_ = nullptr;
  obs::Counter* bypasses_ = nullptr;
  obs::Counter* integrity_mismatch_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace tss::fs
