#include "fs/dist.h"

#include <unistd.h>

#include <ctime>

#include "util/path.h"

namespace tss::fs {

DistFs::DistFs(FileSystem* metadata, std::map<std::string, FileSystem*> servers,
               Options options)
    : metadata_(metadata),
      servers_(std::move(servers)),
      options_(std::move(options)),
      rng_(options_.name_seed
               ? options_.name_seed
               : static_cast<uint64_t>(::time(nullptr)) * 2654435761ULL ^
                     static_cast<uint64_t>(::getpid())) {
  for (const auto& [name, fs] : servers_) server_names_.push_back(name);
  if (options_.client_id.empty()) {
    options_.client_id = "c" + std::to_string(::getpid());
  }
  options_.volume = path::sanitize(options_.volume);
}

Result<void> DistFs::fault(const std::string& point) {
  if (fault_hook_) return fault_hook_(point);
  return Result<void>::success();
}

namespace {
// Errors that mean the *server* is gone, not that the operation was
// semantically refused — the cue to retry file creation on the next server.
bool is_unreachable(int code) {
  return code == EHOSTUNREACH || code == ECONNREFUSED || code == ECONNRESET ||
         code == ETIMEDOUT || code == EPIPE || code == ENETDOWN ||
         code == ENETUNREACH || code == EIO || code == ENODEV;
}
}  // namespace

FileSystem* DistFs::server_for(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second;
}

std::string DistFs::generate_data_name() {
  // "a unique data file name is generated from the client's IP address,
  // current time, and a random number" (§5).
  return "file-" + options_.client_id + "-" +
         std::to_string(::time(nullptr)) + "-" + rng_.hex(12);
}

Result<void> DistFs::format() {
  for (const auto& [name, fs] : servers_) {
    auto rc = mkdir_recursive(*fs, options_.volume);
    if (!rc.ok()) {
      return Error(rc.error().code,
                   "format " + name + ": " + rc.error().message);
    }
  }
  return Result<void>::success();
}

Result<std::unique_ptr<File>> DistFs::open(const std::string& p,
                                           const OpenFlags& flags,
                                           uint32_t mode) {
  std::string canonical = path::sanitize(p);

  // Fast path: the stub already exists.
  auto stub_text = metadata_->read_file(canonical);
  if (stub_text.ok()) {
    if (flags.create && flags.exclusive) {
      return Error(EEXIST, "file exists: " + canonical);
    }
    TSS_ASSIGN_OR_RETURN(Stub stub, Stub::parse(stub_text.value()));
    FileSystem* server = server_for(stub.server);
    if (!server) {
      return Error(EHOSTUNREACH, "unknown data server: " + stub.server);
    }
    OpenFlags data_flags = flags;
    data_flags.create = false;     // data file identity is fixed by the stub
    data_flags.exclusive = false;
    auto file = server->open(stub.data_path, data_flags, mode);
    if (!file.ok() && file.error().code == ENOENT) {
      // Dangling stub from a crash between steps 2 and 3: "an attempt to
      // open such a file yields 'file not found'" (§5).
      return Error(ENOENT, "dangling stub (no data file): " + canonical);
    }
    return file;
  }
  if (stub_text.error().code != ENOENT) {
    return std::move(stub_text).take_error();
  }
  if (!flags.create) {
    return Error(ENOENT, "no such file: " + canonical);
  }
  if (server_names_.empty()) {
    return Error(ENODEV, "distfs has no data servers");
  }

  // With a scheduler, probe every candidate concurrently (a stat of the
  // volume directory) and keep only the servers that answer: the catalog
  // listing behind the pool "is necessarily stale" (§4), and one parallel
  // round trip is cheaper than serially walking into dead servers below.
  // The probe is advisory — if it rules out everything (every server
  // momentarily unreachable), fall back to trying them all.
  std::vector<std::string> candidates = server_names_;
  if (options_.scheduler && server_names_.size() > 1) {
    std::vector<FileSystem*> probe_targets;
    probe_targets.reserve(server_names_.size());
    for (const std::string& name : server_names_) {
      probe_targets.push_back(servers_[name]);
    }
    std::vector<Result<StatInfo>> probes =
        fan_out(options_.scheduler, probe_targets.size(), [&](size_t s) {
          return probe_targets[s]->stat(options_.volume);
        });
    std::vector<std::string> reachable;
    for (size_t s = 0; s < server_names_.size(); s++) {
      if (probes[s].ok() || !is_unreachable(probes[s].error().code)) {
        reachable.push_back(server_names_[s]);
      }
    }
    if (!reachable.empty()) candidates = std::move(reachable);
  }

  // Step 1: choose a server and generate a unique data file name.
  const size_t first_choice = rng_.below(candidates.size());
  Stub stub{candidates[first_choice],
            path::join(options_.volume, generate_data_name())};

  // Step 2: create the stub entry with an exclusive open, so a name
  // collision between two processes aborts file creation.
  auto stub_file =
      metadata_->open(canonical, OpenFlags::parse("wcx").value(), 0644);
  if (!stub_file.ok()) {
    if (stub_file.error().code == EEXIST) {
      if (flags.exclusive) return Error(EEXIST, "file exists: " + canonical);
      // Lost the race: another client created it; open theirs.
      OpenFlags retry = flags;
      retry.create = false;
      return open(canonical, retry, mode);
    }
    return std::move(stub_file).take_error();
  }
  std::string text = stub.serialize();
  auto wrote = stub_file.value()->pwrite(text.data(), text.size(), 0);
  if (!wrote.ok()) return std::move(wrote).take_error();
  TSS_RETURN_IF_ERROR(stub_file.value()->close());

  // Crash injection point: stub exists, data file does not.
  TSS_RETURN_IF_ERROR(fault("stub-created"));

  // Step 3: create the data file. The catalog listing behind this pool "is
  // necessarily stale" (§4): the chosen server may be gone by now. That is
  // no reason to fail the create — re-point the stub at the next server and
  // try again, preserving the §5 stub-before-data ordering at every step.
  OpenFlags data_flags = flags;
  data_flags.create = true;
  data_flags.exclusive = false;
  Error last(EHOSTUNREACH, "no data server reachable");
  for (size_t attempt = 0; attempt < candidates.size(); attempt++) {
    const std::string& server_name =
        candidates[(first_choice + attempt) % candidates.size()];
    if (attempt > 0) {
      stub = Stub{server_name,
                  path::join(options_.volume, generate_data_name())};
      auto repointed = metadata_->write_file(canonical, stub.serialize());
      if (!repointed.ok()) return std::move(repointed).take_error();
    }
    auto file = servers_[server_name]->open(stub.data_path, data_flags, mode);
    if (file.ok()) return file;
    last = std::move(file).take_error();
    if (!is_unreachable(last.code)) break;  // semantic refusal: don't hop
  }
  // Every candidate failed. The metadata server is still reachable (it just
  // accepted the stub), so clean up rather than leave a dangling stub.
  (void)metadata_->unlink(canonical);
  return last;
}

Result<Stub> DistFs::locate(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_ASSIGN_OR_RETURN(std::string text, metadata_->read_file(canonical));
  return Stub::parse(text);
}

Result<StatInfo> DistFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  // Read the stub straight away (one metadata round trip); a directory
  // answers EISDIR and is stat'ed directly. Files then cost one more round
  // trip to the data server: "DSFS has slower stat and open calls because
  // stub file lookups require multiple round trips" (Fig 4) — twice the
  // CFS latency, not three times.
  auto text = metadata_->read_file(canonical);
  if (!text.ok()) {
    if (text.error().code == EISDIR) return metadata_->stat(canonical);
    return std::move(text).take_error();
  }
  TSS_ASSIGN_OR_RETURN(Stub stub, Stub::parse(text.value()));
  FileSystem* server = server_for(stub.server);
  if (!server) {
    return Error(EHOSTUNREACH, "unknown data server: " + stub.server);
  }
  auto info = server->stat(stub.data_path);
  if (!info.ok() && info.error().code == ENOENT) {
    return Error(ENOENT, "dangling stub: " + canonical);
  }
  return info;
}

Result<void> DistFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_ASSIGN_OR_RETURN(std::string text, metadata_->read_file(canonical));
  TSS_ASSIGN_OR_RETURN(Stub stub, Stub::parse(text));
  FileSystem* server = server_for(stub.server);
  if (server) {
    // "deletion is performed by removing the data file, then the stub
    // file" (§5) — the failure mode is again a dangling stub, never an
    // unreferenced data file.
    auto rc = server->unlink(stub.data_path);
    if (!rc.ok() && rc.error().code != ENOENT) return rc;
  }
  TSS_RETURN_IF_ERROR(fault("data-deleted"));
  return metadata_->unlink(canonical);
}

Result<void> DistFs::rename(const std::string& from, const std::string& to) {
  std::string source = path::sanitize(from);
  std::string target = path::sanitize(to);
  // Renaming a file onto itself is a no-op; in particular it must not
  // treat its own data file as a replaced target's garbage.
  if (source == target) {
    TSS_RETURN_IF_ERROR(metadata_->stat(source));
    return Result<void>::success();
  }
  // The source must exist before we touch anything at the target.
  TSS_RETURN_IF_ERROR(metadata_->stat(source));
  // A rename over an existing file replaces its stub; that file's data
  // must be removed first or it becomes exactly the "unreferenced garbage"
  // the §5 ordering exists to prevent. Data before stub, as in unlink
  // (a crash between the two steps leaves a dangling target stub — the
  // §5-sanctioned failure mode).
  auto old_stub_text = metadata_->read_file(target);
  if (old_stub_text.ok()) {
    auto old_stub = Stub::parse(old_stub_text.value());
    if (old_stub.ok()) {
      if (FileSystem* server = server_for(old_stub.value().server)) {
        auto rc = server->unlink(old_stub.value().data_path);
        if (!rc.ok() && rc.error().code != ENOENT) return rc;
      }
    }
  }
  // Name-only from here: the stub moves; the source's data file stays put.
  return metadata_->rename(source, target);
}

Result<void> DistFs::mkdir(const std::string& p, uint32_t mode) {
  return metadata_->mkdir(p, mode);
}

Result<void> DistFs::rmdir(const std::string& p) { return metadata_->rmdir(p); }

Result<void> DistFs::truncate(const std::string& p, uint64_t size) {
  TSS_ASSIGN_OR_RETURN(Stub stub, locate(p));
  FileSystem* server = server_for(stub.server);
  if (!server) {
    return Error(EHOSTUNREACH, "unknown data server: " + stub.server);
  }
  return server->truncate(stub.data_path, size);
}

Result<std::vector<DirEntry>> DistFs::readdir(const std::string& p) {
  // Listing is a pure directory-tree operation. Entry sizes for files are
  // stub sizes; true sizes require stat (which contacts the data server).
  return metadata_->readdir(p);
}

}  // namespace tss::fs
