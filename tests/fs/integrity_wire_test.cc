// End-to-end data integrity, wire half: three live Chirp servers behind
// ReplicatedFs-over-CfsFs, with transport-level payload corruption injected
// via the LineStream fault hook. Proves the full chain the issue demands:
// the chirp checksum turns a mangled frame into EBADMSG, ReplicatedFs
// quarantines the corrupt replica (serial and hedged) without serving the
// bad bytes, and the scrubber re-verifies and lifts the quarantine once the
// corruption clears. Also covers upload protection (putfile digest) and
// interop with a peer that never negotiated the capability.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/replicated.h"
#include "fs/scrubber.h"
#include "net/line_stream.h"
#include "obs/metrics.h"
#include "par/executor.h"

namespace tss::fs {
namespace {

class WireIntegrityTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 3;

  void SetUp() override {
    base_ = ::testing::TempDir() + "/wint_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < kReplicas; i++) {
      std::string root = base_ + "/r" + std::to_string(i);
      std::filesystem::create_directories(root);
      roots_.push_back(root);
      chirp::ServerOptions options;
      options.owner = "unix:testowner";
      options.root_acl =
          acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      servers_.push_back(std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(root),
          std::move(auth)));
      ASSERT_TRUE(servers_[i]->start().ok());
      corrupt_budgets_.push_back(std::make_shared<std::atomic<int>>(0));
    }
  }

  void TearDown() override {
    for (auto& server : servers_) server->stop();
    std::filesystem::remove_all(base_);
  }

  // A connector that authenticates and then installs a fault hook: the next
  // `corrupt_budgets_[i]` payload blobs *received* on this connection have
  // one bit flipped, after which the wire runs clean. The hook survives
  // reconnects because the connector re-installs it.
  CfsFs::ConnectFn corrupting_connector(int i) {
    net::Endpoint endpoint{"127.0.0.1", servers_[i]->port()};
    auto budget = corrupt_budgets_[i];
    return [endpoint, budget]() -> Result<chirp::Client> {
      TSS_ASSIGN_OR_RETURN(chirp::Client client,
                           chirp::Client::connect(endpoint));
      auth::HostnameClientCredential credential;
      auto subject = client.authenticate(credential);
      if (!subject.ok()) return std::move(subject).take_error();
      client.set_transport_fault(
          [budget](std::string_view point) -> net::TransportFault {
            if (point != "read_blob") return net::TransportFault::none();
            int remaining = budget->load();
            while (remaining > 0 &&
                   !budget->compare_exchange_weak(remaining, remaining - 1)) {
            }
            if (remaining > 0) return net::TransportFault::corrupt(0);
            return net::TransportFault::none();
          });
      return client;
    };
  }

  // ReplicatedFs over three CfsFs mounts, all carrying the corrupt hook.
  struct Volume {
    std::vector<std::unique_ptr<CfsFs>> mounts;
    std::unique_ptr<ReplicatedFs> fs;
  };
  Volume make_volume(obs::Registry* registry, IoScheduler* scheduler = nullptr,
                     bool hedged = false) {
    Volume v;
    std::vector<FileSystem*> members;
    for (int i = 0; i < kReplicas; i++) {
      CfsFs::Options options;
      options.retry.max_attempts = 3;
      options.retry.base_delay = kMillisecond;
      v.mounts.push_back(
          std::make_unique<CfsFs>(corrupting_connector(i), options));
      members.push_back(v.mounts.back().get());
    }
    ReplicatedFs::Options options;
    options.metrics = registry;
    options.scheduler = scheduler;
    options.hedged_reads = hedged;
    v.fs = std::make_unique<ReplicatedFs>(std::move(members), options);
    return v;
  }

  chirp::Client connect_client(int i, bool integrity = true) {
    chirp::Client::Options options;
    options.integrity = integrity;
    auto connected =
        chirp::Client::connect({"127.0.0.1", servers_[i]->port()}, options);
    EXPECT_TRUE(connected.ok()) << connected.error().to_string();
    chirp::Client client = std::move(connected).value();
    auth::HostnameClientCredential credential;
    EXPECT_TRUE(client.authenticate(credential).ok());
    return client;
  }

  std::string base_;
  std::vector<std::string> roots_;
  std::vector<std::unique_ptr<chirp::Server>> servers_;
  std::vector<std::shared_ptr<std::atomic<int>>> corrupt_budgets_;
  static inline int counter_ = 0;
};

TEST_F(WireIntegrityTest, SerialPreadFailsOverAndQuarantinesTheCorruptReplica) {
  obs::Registry registry;
  Volume v = make_volume(&registry);
  const std::string payload = "bytes that must arrive intact";
  ASSERT_TRUE(v.fs->write_file("/doc", payload).ok());

  // Replica 0's next received payload is mangled in flight. The checksum
  // catches it; the reader sees only the good copy from replica 1.
  corrupt_budgets_[0]->store(1);
  auto got = v.fs->read_file("/doc");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), payload);

  EXPECT_TRUE(v.fs->replica_quarantined(0));
  EXPECT_TRUE(v.fs->replica_available(0));  // reachable: not a breaker event
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
  EXPECT_GE(registry.counter_value("fs.integrity.mismatch"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 0u);
  for (int round = 0; round < 3; round++) {
    EXPECT_EQ(v.fs->read_file("/doc").value(), payload);
  }
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
}

TEST_F(WireIntegrityTest, HedgedReadNeverCrownsACorruptWinner) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  obs::Registry registry;
  Volume v = make_volume(&registry, &scheduler, /*hedged=*/true);
  const std::string payload = "the hedge race must reject bad bytes";
  ASSERT_TRUE(v.fs->write_file("/doc", payload).ok());

  // Replica 0 corrupts every payload it serves — and, being local and
  // otherwise healthy, it is as fast as any other contender in the race.
  corrupt_budgets_[0]->store(1 << 20);
  auto file = v.fs->open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok()) << file.error().to_string();
  char buffer[128];
  for (int round = 0; round < 10; round++) {
    auto n = file.value()->pread(buffer, sizeof buffer, 0);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    EXPECT_EQ(std::string(buffer, n.value()), payload);
  }
  ASSERT_TRUE(file.value()->close().ok());
  EXPECT_TRUE(v.fs->replica_quarantined(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
}

TEST_F(WireIntegrityTest, ScrubberLiftsTheQuarantineOnceTheWireRunsClean) {
  obs::Registry registry;
  Volume v = make_volume(&registry);
  const std::string payload = "transiently maligned, permanently fine";
  ASSERT_TRUE(v.fs->write_file("/doc", payload).ok());

  // One transient corruption event quarantines replica 0 — but its bytes at
  // rest were never wrong.
  corrupt_budgets_[0]->store(1);
  ASSERT_EQ(v.fs->read_file("/doc").value(), payload);
  ASSERT_TRUE(v.fs->replica_quarantined(0));

  // The scrub re-digests every replica over a now-clean wire, finds full
  // agreement, and repair() releases the replica.
  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  Scrubber scrubber(v.fs.get(), scrub_options);
  auto report = scrubber.scrub_file("/doc");
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_FALSE(report.value().mismatch);
  EXPECT_FALSE(v.fs->replica_quarantined(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.repaired"), 1u);
  // A subsequent direct read of that replica verifies clean end to end
  // (getfile re-checks the sum trailer on the way back).
  EXPECT_EQ(v.fs->replica(0)->read_file("/doc").value(), payload);
}

TEST_F(WireIntegrityTest, CorruptUploadIsRefusedAndLeavesNothingAtRest) {
  chirp::Client client = connect_client(0);
  ASSERT_TRUE(client.checksum_enabled());
  // Flip a bit in the *outgoing* payload after the digest was computed — a
  // NIC or middlebox mangling the upload. The server's verification must
  // refuse the op and keep the damaged file out of the namespace.
  int writes_to_corrupt = 1;
  client.set_transport_fault(
      [&writes_to_corrupt](std::string_view point) -> net::TransportFault {
        if (point == "write_blob" && writes_to_corrupt > 0) {
          writes_to_corrupt--;
          return net::TransportFault::corrupt(3);
        }
        return net::TransportFault::none();
      });
  auto put = client.putfile("/upload", "precious payload");
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.error().code, EBADMSG);
  EXPECT_EQ(client.stat("/upload").code(), ENOENT);

  // The budget is spent; the retry goes through and verifies on read-back.
  ASSERT_TRUE(client.putfile("/upload", "precious payload").ok());
  EXPECT_EQ(client.getfile("/upload").value(), "precious payload");
}

TEST_F(WireIntegrityTest, GetfileTrailerCatchesDownloadCorruption) {
  chirp::Client client = connect_client(1);
  obs::Registry client_metrics;
  chirp::Client::Options options;
  options.metrics = &client_metrics;
  auto connected =
      chirp::Client::connect({"127.0.0.1", servers_[1]->port()}, options);
  ASSERT_TRUE(connected.ok());
  chirp::Client reader = std::move(connected).value();
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(reader.authenticate(credential).ok());
  ASSERT_TRUE(client.putfile("/blob", "streamed and summed").ok());

  int reads_to_corrupt = 1;
  reader.set_transport_fault(
      [&reads_to_corrupt](std::string_view point) -> net::TransportFault {
        if (point == "read_blob" && reads_to_corrupt > 0) {
          reads_to_corrupt--;
          return net::TransportFault::corrupt(7);
        }
        return net::TransportFault::none();
      });
  auto torn = reader.getfile("/blob");
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.error().code, EBADMSG);
  EXPECT_EQ(client_metrics.counter_value("chirp.client.integrity.mismatch"),
            1u);
  // Clean wire, clean read.
  EXPECT_EQ(reader.getfile("/blob").value(), "streamed and summed");
}

TEST_F(WireIntegrityTest, PeerWithoutTheCapabilityStillInteroperates) {
  // An old-style peer never offers the checksum capability; the server must
  // speak the unadorned protocol with it, byte for byte.
  chirp::Client plain = connect_client(2, /*integrity=*/false);
  EXPECT_FALSE(plain.checksum_enabled());
  ASSERT_TRUE(plain.putfile("/legacy", "no sums here").ok());
  EXPECT_EQ(plain.getfile("/legacy").value(), "no sums here");
  auto opened = plain.open("/legacy", OpenFlags::parse("r").value(), 0);
  ASSERT_TRUE(opened.ok());
  char buffer[32];
  auto n = plain.pread(opened.value(), buffer, sizeof buffer, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buffer, n.value()), "no sums here");

  // And a modern peer talking to the same server still verifies.
  chirp::Client modern = connect_client(2);
  EXPECT_TRUE(modern.checksum_enabled());
  EXPECT_EQ(modern.getfile("/legacy").value(), "no sums here");
}

}  // namespace
}  // namespace tss::fs
