# Empty compiler generated dependencies file for tss_chirp_server.
# This may be replaced when dependencies are built.
