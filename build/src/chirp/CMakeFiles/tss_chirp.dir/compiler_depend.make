# Empty compiler generated dependencies file for tss_chirp.
# This may be replaced when dependencies are built.
