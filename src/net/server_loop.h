// Thread-per-connection accept loop shared by all TSS servers.
//
// The paper's servers are single-binary daemons an ordinary user starts with
// one command. ServerLoop captures the common lifecycle: bind (ephemeral
// ports supported so tests and rapid deployment need no configuration),
// accept, hand each connection to a handler on its own thread, and shut down
// cleanly — on disconnect the handler returns and all per-connection state
// dies with it, matching Chirp's "server frees all resources associated with
// that connection" failure semantics.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace tss::net {

class ServerLoop {
 public:
  using Handler = std::function<void(TcpSocket)>;

  // Admission control. A stalled or leaking client population must not be
  // able to exhaust the server: beyond `max_connections` live sessions,
  // further connections are refused immediately — a fast, typed failure
  // instead of hanging in the listen backlog.
  struct Limits {
    size_t max_connections = 0;  // 0 = unlimited
    // Bytes written (best-effort) to a refused connection before it is
    // closed. ServerLoop is protocol-agnostic, so the owning server supplies
    // its own wire-format refusal (e.g. a Chirp "error EBUSY ..." line);
    // empty = close silently and the client observes bare EOF.
    std::string reject_notice;
    // Incremented once per refused connection, if set. Not owned.
    obs::Counter* rejected_counter = nullptr;
  };

  ServerLoop() = default;
  ~ServerLoop() { stop(); }
  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  // Binds and starts the accept thread. host defaults to loopback; port 0
  // picks an ephemeral port (see port() after start).
  Result<void> start(const std::string& host, uint16_t port, Handler handler,
                     Limits limits);
  Result<void> start(const std::string& host, uint16_t port,
                     Handler handler) {
    return start(host, port, std::move(handler), Limits());
  }

  // Stops accepting, forcibly shuts down live connections (handlers observe
  // EOF), and joins all threads.
  void stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  // Number of connections accepted over the loop's lifetime (for tests).
  uint64_t connections_accepted() const { return accepted_.load(); }
  // Number of connections refused by the max_connections cap.
  uint64_t connections_rejected() const { return rejected_.load(); }
  // Number of handler threads currently live.
  size_t active_connections() const { return active_.load(); }

 private:
  struct Connection {
    std::thread thread;
    int dup_fd = -1;  // dup of the connection fd, used to shutdown() on stop
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_finished_locked();

  TcpListener listener_;
  Handler handler_;
  Limits limits_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> active_{0};
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<Connection> conns_;
};

}  // namespace tss::net
