file(REMOVE_RECURSE
  "CMakeFiles/tss_chirp_server.dir/chirp_server_main.cc.o"
  "CMakeFiles/tss_chirp_server.dir/chirp_server_main.cc.o.d"
  "tss_chirp_server"
  "tss_chirp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_chirp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
