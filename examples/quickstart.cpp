// Quickstart: deploy a personal file server, share space, discover it.
//
// The TSS pitch in three minutes (§1-§4):
//   1. an ordinary user exports a directory with one command — here, one
//      constructor — and gets a Chirp file server with grid security;
//   2. a client connects through the adapter's namespace and works with
//      plain Unix-style calls;
//   3. the owner grants a visitor a *reservation* (the V right): the
//      visitor can carve out a private workspace but cannot touch anything
//      else;
//   4. the server reports to a catalog, where anyone can discover it.
//
// Run:  ./quickstart   (no arguments, no privileges, exits 0 on success)
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "adapter/adapter.h"
#include "auth/hostname.h"
#include "auth/unix.h"
#include "catalog/catalog.h"
#include "util/strings.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

using namespace tss;

namespace {
void say(const char* msg) { std::printf("==> %s\n", msg); }

#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _r = (expr);                                              \
    if (!_r.ok()) {                                                \
      std::printf("FAILED: %s: %s\n", #expr,                       \
                  _r.error().to_string().c_str());                 \
      return 1;                                                    \
    }                                                              \
  } while (0)
}  // namespace

int main() {
  std::string root = "/tmp/tss-quickstart-" + std::to_string(::getpid());
  std::filesystem::create_directories(root);

  // -- 1. Deploy a file server on any directory, no privileges needed. ------
  say("deploying a Chirp file server (ephemeral port, exporting a temp dir)");
  chirp::ServerOptions options;
  options.owner = "hostname:localhost";  // we authenticate by hostname below
  options.root_acl =
      acl::Acl::parse("hostname:localhost rwldav(rwl)\n"
                      "unix:* v(rwl)\n")
          .value();
  chirp::Server server(options, std::make_unique<chirp::PosixBackend>(root),
                       chirp::make_default_auth());
  CHECK_OK(server.start());
  std::printf("    serving %s on %s\n", root.c_str(),
              server.endpoint().to_string().c_str());

  // -- 2. Attach through the adapter's default namespace. -------------------
  say("mounting it in the adapter namespace as /cfs/<host:port>/...");
  adapter::Adapter::Options adapter_options;
  adapter_options.credentials = {
      std::make_shared<auth::HostnameClientCredential>()};
  adapter::Adapter adapter(adapter_options);
  std::string base = "/cfs/" + server.endpoint().to_string();

  CHECK_OK(adapter.write_file(base + "/hello.txt",
                              "tactical storage says hello\n"));
  auto content = adapter.read_file(base + "/hello.txt");
  CHECK_OK(content);
  std::printf("    read back: %s", content.value().c_str());

  say("standard Unix-style descriptor I/O works too");
  auto fd = adapter.open(base + "/log.txt", O_WRONLY | O_CREAT);
  CHECK_OK(fd);
  CHECK_OK(adapter.write(fd.value(), "line one\n", 9));
  CHECK_OK(adapter.write(fd.value(), "line two\n", 9));
  CHECK_OK(adapter.close(fd.value()));
  auto info = adapter.stat(base + "/log.txt");
  CHECK_OK(info);
  std::printf("    /log.txt is %llu bytes\n",
              static_cast<unsigned long long>(info.value().size));

  // -- 3. Mountlists give applications a private namespace (§6). ------------
  say("mapping a logical name with a mountlist: /data -> this server");
  CHECK_OK(adapter.load_mountlist("/data " + base + "\n"));
  auto via_logical = adapter.read_file("/data/hello.txt");
  CHECK_OK(via_logical);
  std::printf("    /data/hello.txt -> %s", via_logical.value().c_str());

  // -- 4. The reserve right: visitors carve private workspaces (§4). --------
  say("a visiting unix-authenticated user exercises the reserve (V) right");
  {
    auto client = chirp::Client::connect(server.endpoint());
    CHECK_OK(client);
    auth::UnixClientCredential unix_credential;
    auto subject = client.value().authenticate(unix_credential);
    CHECK_OK(subject);
    std::printf("    visitor authenticated as %s\n",
                subject.value().to_string().c_str());
    // Direct writes at the root are refused (the visitor only holds V)...
    auto refused = client.value().putfile("/intrusion", "nope");
    std::printf("    putfile at root: %s (expected: denied)\n",
                refused.ok() ? "allowed?!" : "denied");
    // ...but mkdir creates a private workspace with exactly v(rwl) rights.
    CHECK_OK(client.value().mkdir("/visitor-workspace", 0755));
    CHECK_OK(client.value().putfile("/visitor-workspace/notes.txt",
                                    "my private corner"));
    auto acl_text = client.value().getacl("/visitor-workspace");
    CHECK_OK(acl_text);
    std::printf("    fresh workspace ACL:\n      %s",
                acl_text.value().c_str());
  }

  // -- 5. Catalog discovery (§4). --------------------------------------------
  say("the server reports to a catalog; clients discover it there");
  catalog::CatalogServer catalog_server(catalog::CatalogServer::Options{});
  CHECK_OK(catalog_server.start());
  auto server_info = server.info();
  catalog::ServerReport report;
  report.name = "quickstart-server";
  report.owner = server_info.owner;
  report.address = server_info.endpoint;
  report.total_bytes = server_info.total_bytes;
  report.free_bytes = server_info.free_bytes;
  report.root_acl = server_info.root_acl;
  CHECK_OK(catalog::send_report(catalog_server.endpoint(), report));

  auto listing = catalog::query(catalog_server.endpoint());
  CHECK_OK(listing);
  for (const auto& entry : listing.value()) {
    std::printf("    discovered: %s at %s, owner %s, %s free\n",
                entry.name.c_str(), entry.address.to_string().c_str(),
                entry.owner.c_str(), format_bytes(entry.free_bytes).c_str());
  }

  say("quickstart complete");
  catalog_server.stop();
  server.stop();
  std::filesystem::remove_all(root);
  return 0;
}
