#include "db/client.h"

#include "util/strings.h"

namespace tss::db {

Result<Client> Client::connect(const net::Endpoint& server, Options options) {
  TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                       net::TcpSocket::connect(server, options.timeout));
  return Client(net::LineStream(std::move(sock), options.timeout));
}

Result<std::vector<std::string>> Client::roundtrip(const std::string& line) {
  TSS_RETURN_IF_ERROR(stream_.send_line(line));
  TSS_ASSIGN_OR_RETURN(std::string response, stream_.read_line());
  auto words = split_words(response);
  if (words.empty()) return Error(EPROTO, "db: empty response");
  if (words[0] == "ok") {
    words.erase(words.begin());
    return words;
  }
  if (words[0] == "error" && words.size() >= 2) {
    auto code = parse_i64(words[1]);
    if (!code || *code == 0) return Error(EPROTO, "db: bad error code");
    return Error(static_cast<int>(*code),
                 words.size() > 2 ? url_decode(words[2]) : "db error");
  }
  return Error(EPROTO, "db: bad response: " + response);
}

Result<std::vector<Record>> Client::read_records(uint64_t count) {
  std::vector<Record> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; i++) {
    TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
    TSS_ASSIGN_OR_RETURN(Record record, decode_record(line));
    out.push_back(std::move(record));
  }
  return out;
}

Result<void> Client::mktable(const std::string& table,
                             const std::vector<std::string>& indexed_fields) {
  std::string fields;
  for (size_t i = 0; i < indexed_fields.size(); i++) {
    if (i) fields += ',';
    fields += indexed_fields[i];
  }
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("mktable " + table + " " + fields));
  (void)args;
  return Result<void>::success();
}

Result<void> Client::put(const std::string& table, const Record& record) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("put " + table + " " + encode_record(record)));
  (void)args;
  return Result<void>::success();
}

Result<Record> Client::get(const std::string& table, const std::string& id) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("get " + table + " " + url_encode(id)));
  if (args.empty()) return Record{};
  return decode_record(args[0]);
}

Result<void> Client::del(const std::string& table, const std::string& id) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("del " + table + " " + url_encode(id)));
  (void)args;
  return Result<void>::success();
}

Result<std::vector<Record>> Client::query(const std::string& table,
                                          const std::string& field,
                                          const std::string& value) {
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("query " + table + " " + url_encode(field) + " " +
                           url_encode(value)));
  if (args.empty()) return Error(EPROTO, "db: short query reply");
  auto count = parse_u64(args[0]);
  if (!count) return Error(EPROTO, "db: bad query count");
  return read_records(*count);
}

Result<std::vector<Record>> Client::scan(const std::string& table) {
  TSS_ASSIGN_OR_RETURN(auto args, roundtrip("scan " + table));
  if (args.empty()) return Error(EPROTO, "db: short scan reply");
  auto count = parse_u64(args[0]);
  if (!count) return Error(EPROTO, "db: bad scan count");
  return read_records(*count);
}

Result<uint64_t> Client::count(const std::string& table) {
  TSS_ASSIGN_OR_RETURN(auto args, roundtrip("count " + table));
  if (args.empty()) return Error(EPROTO, "db: short count reply");
  auto n = parse_u64(args[0]);
  if (!n) return Error(EPROTO, "db: bad count");
  return *n;
}

Result<void> Client::sync() {
  TSS_ASSIGN_OR_RETURN(auto args, roundtrip("sync"));
  (void)args;
  return Result<void>::success();
}

}  // namespace tss::db
