// Helpers for benches that execute the tss_syscall_worker binary, natively
// or under the parrot tracer, and read back its self-measured timing.
#pragma once

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "parrot/tracer.h"
#include "util/result.h"
#include "util/strings.h"

namespace tss::bench {

// Locates the worker binary next to this bench binary's build tree:
// build/bench/<bench> -> build/src/parrot/tss_syscall_worker. The
// TSS_SYSCALL_WORKER environment variable overrides.
inline std::string find_worker(const char* argv0) {
  if (const char* env = std::getenv("TSS_SYSCALL_WORKER")) return env;
  std::string self(argv0);
  size_t slash = self.rfind('/');
  std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../src/parrot/tss_syscall_worker";
}

// Runs the worker (optionally traced) and returns the printed value of the
// first "<label> <number>" line in its stdout.
inline Result<int64_t> run_worker(const std::string& worker,
                                  const std::vector<std::string>& args,
                                  bool traced, const std::string& label) {
  std::string out_path =
      "/tmp/tss-bench-worker-" + std::to_string(::getpid()) + ".out";
  std::string command = worker;
  for (const std::string& a : args) command += " " + a;
  command += " > " + out_path;

  if (traced) {
    auto stats = parrot::trace_run({"/bin/sh", "-c", command});
    if (!stats.ok()) return std::move(stats).take_error();
    if (stats.value().exit_code != 0) {
      return Error(EIO, "traced worker exited " +
                            std::to_string(stats.value().exit_code));
    }
  } else {
    int rc = std::system(command.c_str());
    if (rc != 0) return Error(EIO, "worker exited nonzero");
  }

  std::ifstream in(out_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  ::unlink(out_path.c_str());
  for (const std::string& line : split(buffer.str(), '\n')) {
    auto words = split_words(line);
    if (words.size() == 2 && words[0] == label) {
      auto n = parse_i64(words[1]);
      if (n) return *n;
    }
  }
  return Error(EPROTO, "worker output missing " + label);
}

}  // namespace tss::bench
