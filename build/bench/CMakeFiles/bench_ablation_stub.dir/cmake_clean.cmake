file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stub.dir/bench_ablation_stub.cc.o"
  "CMakeFiles/bench_ablation_stub.dir/bench_ablation_stub.cc.o.d"
  "bench_ablation_stub"
  "bench_ablation_stub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
