// Wire-level observability: counters, gauges, log-scale latency histograms,
// and lightweight RPC span tracing.
//
// The paper's entire evaluation (Figs. 3-9) is measured latency and
// bandwidth; this module is the first-class substrate for those numbers.
// Every hot path in the stack — Chirp server dispatch, client round-trips,
// CFS reconnects, replica circuit breakers, fault injection — records into a
// Registry, and the same snapshot format is produced by the real TCP stack,
// the discrete-event simulator, and the `stats` RPC / tss_stats CLI.
//
// Design:
//  - Updates are lock-free. Counter/Gauge are single atomics; Histogram is a
//    fixed array of atomic buckets. No allocation, no locking, no syscalls
//    on the record path, so instrumenting a hot loop is safe.
//  - Metric *lookup* (name -> object) takes a mutex; callers on hot paths
//    resolve pointers once and cache them. Registered objects live for the
//    registry's lifetime at stable addresses.
//  - Histograms are log-scale with 8 sub-buckets per power of two, covering
//    the full uint64 range in 496 buckets (~4 KB): quantile extraction is
//    exact to within 12.5% of the value, which is ample for p50/p95/p99 of
//    RPC latencies spanning microseconds to minutes.
//  - Spans are a fixed ring buffer of the last N completed RPCs (op,
//    subject, bytes, error, start, duration) guarded by a mutex — spans are
//    for post-hoc failure diagnosis, not per-op counting, so a short
//    critical section is acceptable there.
//
// Snapshot wire format (one line per item, consumed by the `stats` RPC,
// tss_stats, and the bench harnesses; see docs/OBSERVABILITY.md):
//   counter <name> <value>
//   gauge <name> <value>
//   histogram <name> count <n> sum <total> min <v> max <v> p50 <v> p95 <v> p99 <v>
//   span <seq> <op> <urlenc subject> <bytes> <err> <start_ns> <duration_ns>
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace tss::obs {

// Monotonic event count. All operations are wait-free.
class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Instantaneous level (active sessions, open breakers). Wait-free.
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket log-scale histogram. Values are non-negative integers
// (nanoseconds for latencies, bytes for sizes). Buckets: values below 8 are
// exact; above that, each power of two is split into 8 linear sub-buckets,
// so any recorded value is attributed to a bucket whose width is at most
// 1/8 of its lower bound.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 8
  // Buckets 0..7 hold values 0..7 exactly; octaves 3..63 contribute 8
  // sub-buckets each: 8 + 61*8 = 496.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  // Bucket index for a value (monotonic in v).
  static size_t bucket_index(uint64_t v);
  // Inclusive lower bound of a bucket; bucket_low(i+1) is its exclusive
  // upper bound.
  static uint64_t bucket_low(size_t index);

  void record(int64_t v);

  // A consistent-enough copy for reporting: taken while writers may be
  // running, each field is individually atomic, so totals may be mid-update
  // by a few events — fine for monitoring, and the metrics test pins down
  // the quiescent case exactly.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets;

    // Quantile q in [0,1] by bucket walk + linear interpolation within the
    // winning bucket. Returns 0 for an empty histogram.
    uint64_t quantile(double q) const;
  };
  Snapshot snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// One completed RPC, as recorded by the server dispatch loop (real or
// simulated) or a client round-trip.
struct Span {
  uint64_t seq = 0;        // assigned by the ring, monotonically increasing
  std::string op;          // rpc name ("open", "pread", ...)
  std::string subject;     // authenticated subject, "-" if none
  uint64_t bytes = 0;      // payload bytes moved (either direction)
  int err = 0;             // errno result; 0 = ok
  Nanos start = 0;         // clock timestamp at begin
  Nanos duration = 0;      // end - begin

  std::string encode() const;  // one "span ..." snapshot line (no newline)
};

// Ring buffer of the last `capacity` spans.
class SpanRing {
 public:
  explicit SpanRing(size_t capacity = 256);

  // Fills in seq; drops the oldest span when full.
  void record(Span span);

  // Oldest-first copy of the retained spans.
  std::vector<Span> spans() const;
  uint64_t recorded() const;  // total spans ever recorded

 private:
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  size_t capacity_;
  uint64_t next_seq_ = 0;
};

// Named metrics registry. One `global()` instance serves production
// binaries; tests and the simulator construct their own for isolation.
class Registry {
 public:
  explicit Registry(size_t span_capacity = 256);

  static Registry& global();

  // Lookup-or-create. The returned pointer is stable for the registry's
  // lifetime; hot paths resolve once and cache it.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  SpanRing& spans() { return spans_; }

  // Convenience: record a completed RPC span.
  void record_span(std::string_view op, std::string_view subject,
                   uint64_t bytes, int err, Nanos start, Nanos duration);

  // Full text snapshot in the wire format above: counters, gauges, and
  // histograms sorted by name, then spans oldest-first. Safe to call while
  // writers are running.
  std::string render_text() const;

  // Snapshot helpers for programmatic consumers (benches, tests).
  uint64_t counter_value(std::string_view name) const;
  Histogram::Snapshot histogram_snapshot(std::string_view name) const;

 private:
  mutable std::mutex mutex_;  // guards the name maps only
  // deques give stable addresses under growth.
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
  SpanRing spans_;
};

// RAII latency sample: records now()-start into the histogram at scope exit.
// Both pointers may be null (no-op), so call sites stay unconditional.
class ScopedLatency {
 public:
  ScopedLatency(Histogram* h, const Clock* clock)
      : h_(h), clock_(clock), start_(clock ? clock->now() : 0) {}
  ~ScopedLatency() {
    if (h_ && clock_) h_->record(clock_->now() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  Nanos start() const { return start_; }

 private:
  Histogram* h_;
  const Clock* clock_;
  Nanos start_;
};

}  // namespace tss::obs
