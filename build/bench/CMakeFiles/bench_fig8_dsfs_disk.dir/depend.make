# Empty dependencies file for bench_fig8_dsfs_disk.
# This may be replaced when dependencies are built.
