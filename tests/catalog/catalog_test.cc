#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "net/line_stream.h"

namespace tss::catalog {
namespace {

ServerReport sample_report(const std::string& name, uint16_t port) {
  ServerReport report;
  report.name = name;
  report.owner = "unix:dthain";
  report.address = net::Endpoint{"127.0.0.1", port};
  report.total_bytes = 250ULL << 30;  // a 250 GB SATA disk, as in the paper
  report.free_bytes = 100ULL << 30;
  report.root_acl = "hostname:*.cse.nd.edu rwl\n";
  return report;
}

TEST(ServerReport, EncodeDecodeRoundTrip) {
  ServerReport report = sample_report("host5.cse.nd.edu", 9094);
  auto decoded = ServerReport::decode(report.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().name, report.name);
  EXPECT_EQ(decoded.value().owner, report.owner);
  EXPECT_EQ(decoded.value().address, report.address);
  EXPECT_EQ(decoded.value().total_bytes, report.total_bytes);
  EXPECT_EQ(decoded.value().free_bytes, report.free_bytes);
  EXPECT_EQ(decoded.value().root_acl, report.root_acl);
}

TEST(ServerReport, DecodeRequiresAddress) {
  EXPECT_FALSE(ServerReport::decode("name=x&owner=y").ok());
  EXPECT_FALSE(ServerReport::decode("garbage").ok());
}

TEST(ServerReport, UnknownKeysIgnoredForForwardCompat) {
  auto decoded =
      ServerReport::decode("addr=1.2.3.4%3A99&future_field=hello");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().address.port, 99);
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CatalogServer::Options options;
    options.timeout = 60 * kSecond;
    catalog_ = std::make_unique<CatalogServer>(options, &clock_);
    ASSERT_TRUE(catalog_->start().ok());
  }

  VirtualClock clock_;
  std::unique_ptr<CatalogServer> catalog_;
};

TEST_F(CatalogTest, ReportThenQueryOverWire) {
  ASSERT_TRUE(
      send_report(catalog_->endpoint(), sample_report("a.nd.edu", 1111)).ok());
  ASSERT_TRUE(
      send_report(catalog_->endpoint(), sample_report("b.nd.edu", 2222)).ok());

  auto listing = query(catalog_->endpoint());
  ASSERT_TRUE(listing.ok()) << listing.error().to_string();
  ASSERT_EQ(listing.value().size(), 2u);
}

TEST_F(CatalogTest, RefreshedReportReplacesOldRecord) {
  ServerReport report = sample_report("a.nd.edu", 1111);
  catalog_->accept_report(report);
  report.free_bytes = 1;
  catalog_->accept_report(report);
  auto records = catalog_->list();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].report.free_bytes, 1u);
}

TEST_F(CatalogTest, StaleRecordsExpire) {
  catalog_->accept_report(sample_report("a.nd.edu", 1111));
  clock_.advance(30 * kSecond);
  catalog_->accept_report(sample_report("b.nd.edu", 2222));
  EXPECT_EQ(catalog_->size(), 2u);

  // Advance past a's timeout but not b's.
  clock_.advance(40 * kSecond);
  auto records = catalog_->list();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].report.name, "b.nd.edu");

  // Everything expires eventually.
  clock_.advance(120 * kSecond);
  EXPECT_EQ(catalog_->size(), 0u);
}

TEST_F(CatalogTest, ReportRefreshResetsExpiry) {
  catalog_->accept_report(sample_report("a.nd.edu", 1111));
  for (int i = 0; i < 5; i++) {
    clock_.advance(50 * kSecond);
    catalog_->accept_report(sample_report("a.nd.edu", 1111));
  }
  EXPECT_EQ(catalog_->size(), 1u);
}

TEST_F(CatalogTest, JsonRenderingIsWellFormedish) {
  catalog_->accept_report(sample_report("a.nd.edu", 1111));
  std::string json = catalog_->render_json();
  EXPECT_NE(json.find("\"name\": \"a.nd.edu\""), std::string::npos);
  EXPECT_NE(json.find("\"owner\": \"unix:dthain\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  // ACL text contains a newline; it must be escaped, not literal inside the
  // string value.
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST_F(CatalogTest, MultipleCatalogsReceiveSameReporter) {
  // "A system may have multiple catalogs reporting on different servers."
  CatalogServer::Options options;
  options.timeout = 60 * kSecond;
  CatalogServer second(options, &clock_);
  ASSERT_TRUE(second.start().ok());

  Reporter reporter({catalog_->endpoint(), second.endpoint()},
                    [] { return sample_report("multi.nd.edu", 3333); },
                    /*period=*/kSecond);
  reporter.report_now();

  EXPECT_EQ(catalog_->size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  second.stop();
}

TEST_F(CatalogTest, ReporterSurvivesDeadCatalog) {
  // One unreachable catalog must not prevent reports to the live one.
  net::Endpoint dead{"127.0.0.1", 1};  // nothing listens on port 1
  Reporter reporter({dead, catalog_->endpoint()},
                    [] { return sample_report("resilient.nd.edu", 4444); },
                    kSecond);
  reporter.report_now();
  EXPECT_EQ(catalog_->size(), 1u);
}

TEST_F(CatalogTest, WireRejectsMalformedReport) {
  auto sock = net::TcpSocket::connect(catalog_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  net::LineStream stream(std::move(sock).value(), kSecond);
  ASSERT_TRUE(stream.send_line("report not-a-report").ok());
  auto response = stream.read_line();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().substr(0, 5), "error");
}

}  // namespace
}  // namespace tss::catalog
