file(REMOVE_RECURSE
  "CMakeFiles/bench_sp5_table.dir/bench_sp5_table.cc.o"
  "CMakeFiles/bench_sp5_table.dir/bench_sp5_table.cc.o.d"
  "bench_sp5_table"
  "bench_sp5_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sp5_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
