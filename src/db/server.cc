#include "db/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "net/line_stream.h"
#include "util/logging.h"
#include "util/strings.h"

namespace tss::db {

Server::Server(Options options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

Result<void> Server::start() {
  if (!options_.snapshot_dir.empty()) {
    TSS_RETURN_IF_ERROR(recover());
  }
  return loop_.start(options_.host, options_.port, [this](net::TcpSocket s) {
    serve_connection(std::move(s));
  });
}

void Server::stop() {
  if (!loop_.running()) return;
  loop_.stop();
  if (!options_.snapshot_dir.empty()) {
    auto rc = snapshot_all();
    if (!rc.ok()) {
      TSS_WARN("db") << "snapshot on stop failed: " << rc.error().to_string();
    }
  }
}

Table& Server::table(const std::string& name,
                     std::vector<std::string> indexed_fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    it = tables_
             .emplace(name, std::make_unique<Table>(std::move(indexed_fields)))
             .first;
  }
  return *it->second;
}

Result<void> Server::snapshot_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, table] : tables_) {
    std::string path = options_.snapshot_dir + "/" + name + ".tbl";
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Error(EIO, "db: cannot write snapshot " + path);
    // Indexed fields on the first line so recovery rebuilds the indexes.
    out << "#index " << join_words(table->indexed_fields()) << "\n";
    out << table->serialize();
  }
  return Result<void>::success();
}

Result<void> Server::recover() {
  DIR* dir = ::opendir(options_.snapshot_dir.c_str());
  if (!dir) return Result<void>::success();  // nothing to recover
  while (dirent* de = ::readdir(dir)) {
    std::string name = de->d_name;
    if (!ends_with(name, ".tbl")) continue;
    std::ifstream in(options_.snapshot_dir + "/" + name);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();

    std::vector<std::string> indexed;
    std::string body = content;
    if (starts_with(content, "#index ")) {
      size_t nl = content.find('\n');
      indexed = split_words(content.substr(7, nl - 7));
      body = content.substr(nl + 1);
    }
    std::string table_name = name.substr(0, name.size() - 4);
    Table& t = table(table_name, indexed);
    auto rc = t.load(body);
    if (!rc.ok()) {
      ::closedir(dir);
      return Error(rc.error().code,
                   "db: recover " + table_name + ": " + rc.error().message);
    }
  }
  ::closedir(dir);
  return Result<void>::success();
}

void Server::serve_connection(net::TcpSocket sock) {
  net::LineStream stream(std::move(sock), options_.io_timeout);
  while (true) {
    auto line = stream.read_line();
    if (!line.ok()) return;
    auto w = split_words(line.value());
    if (w.empty()) continue;
    const std::string& cmd = w[0];

    auto fail = [&](int code, const std::string& msg) {
      stream.write_line("error " + std::to_string(code) + " " +
                        url_encode(msg));
    };
    auto lookup_table = [&](const std::string& name) -> Table* {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = tables_.find(name);
      return it == tables_.end() ? nullptr : it->second.get();
    };

    if (cmd == "mktable" && w.size() >= 2) {
      std::vector<std::string> fields;
      if (w.size() >= 3) fields = split(w[2], ',');
      table(w[1], fields);
      stream.write_line("ok");
    } else if (cmd == "put" && w.size() >= 3) {
      Table* t = lookup_table(w[1]);
      if (!t) {
        fail(ENOENT, "no such table: " + w[1]);
      } else {
        auto record = decode_record(w[2]);
        if (!record.ok()) {
          fail(record.error().code, record.error().message);
        } else {
          std::lock_guard<std::mutex> lock(mutex_);
          auto rc = t->put(record.value());
          if (!rc.ok()) {
            fail(rc.error().code, rc.error().message);
          } else {
            stream.write_line("ok");
          }
        }
      }
    } else if (cmd == "get" && w.size() >= 3) {
      Table* t = lookup_table(w[1]);
      if (!t) {
        fail(ENOENT, "no such table: " + w[1]);
      } else {
        std::lock_guard<std::mutex> lock(mutex_);
        auto record = t->get(url_decode(w[2]));
        if (!record.ok()) {
          fail(record.error().code, record.error().message);
        } else {
          stream.write_line("ok " + encode_record(record.value()));
        }
      }
    } else if (cmd == "del" && w.size() >= 3) {
      Table* t = lookup_table(w[1]);
      if (!t) {
        fail(ENOENT, "no such table: " + w[1]);
      } else {
        std::lock_guard<std::mutex> lock(mutex_);
        t->remove(url_decode(w[2]));
        stream.write_line("ok");
      }
    } else if ((cmd == "query" && w.size() >= 4) ||
               (cmd == "scan" && w.size() >= 2)) {
      Table* t = lookup_table(w[1]);
      if (!t) {
        fail(ENOENT, "no such table: " + w[1]);
      } else {
        std::vector<Record> records;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (cmd == "query") {
            records = t->query(url_decode(w[2]), url_decode(w[3]));
          } else {
            t->scan([&records](const Record& r) { records.push_back(r); });
          }
        }
        stream.write_line("ok " + std::to_string(records.size()));
        for (const Record& r : records) stream.write_line(encode_record(r));
      }
    } else if (cmd == "count" && w.size() >= 2) {
      Table* t = lookup_table(w[1]);
      if (!t) {
        fail(ENOENT, "no such table: " + w[1]);
      } else {
        std::lock_guard<std::mutex> lock(mutex_);
        stream.write_line("ok " + std::to_string(t->size()));
      }
    } else if (cmd == "sync") {
      auto rc = options_.snapshot_dir.empty() ? Result<void>::success()
                                              : snapshot_all();
      if (!rc.ok()) {
        fail(rc.error().code, rc.error().message);
      } else {
        stream.write_line("ok");
      }
    } else {
      fail(ENOSYS, "unknown db command: " + cmd);
    }

    if (!stream.flush().ok()) return;
  }
}

}  // namespace tss::db
