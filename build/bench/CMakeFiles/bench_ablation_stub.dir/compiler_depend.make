# Empty compiler generated dependencies file for bench_ablation_stub.
# This may be replaced when dependencies are built.
