# Empty compiler generated dependencies file for grid_physics.
# This may be replaced when dependencies are built.
