# Empty compiler generated dependencies file for tss_db.
# This may be replaced when dependencies are built.
