// Chirp backend over a real host filesystem.
//
// The export root is any directory the server's owner chooses ("allowing any
// user to export fresh space or existing data", §4). Virtual paths map under
// the root; callers have already applied path::sanitize, so nothing here can
// escape it.
//
// With enable_alloc_tracking() the backend enforces hierarchical space
// allocations (chirp/alloc.h): every byte a write would add is charged to
// the nearest enclosing allocation *before* the host write happens, and a
// budget overrun is the typed ENOSPC. The tracker's journal lives at
// "<root>/.__alloc__"; reserved bookkeeping files (ACL files, the journal
// itself) are exempt from charging. Two concurrent writers extending the
// same file may transiently overcount (each charges its own extension) —
// conservative by design, never an undercount.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "chirp/alloc.h"
#include "chirp/backend.h"

namespace tss::chirp {

class PosixBackend final : public Backend {
 public:
  explicit PosixBackend(std::string root);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  // Turns on allocation tracking with the given root budget (0 = track but
  // do not cap the root). Replays the journal at "<root>/.__alloc__" when
  // one exists; on the very first enable (no journal yet) the export tree
  // is scanned once so pre-existing data is charged. Idempotent per backend
  // instance only by virtue of replacing the tracker.
  Result<void> enable_alloc_tracking(uint64_t root_limit,
                                     obs::Registry* metrics = nullptr);
  AllocTracker* alloc_tracker() const { return alloc_.get(); }

  Result<int> open(const std::string& path, const OpenFlags& flags,
                   uint32_t mode) override;
  Result<size_t> pread(int handle, void* data, size_t size,
                       int64_t offset) override;
  Result<size_t> pwrite(int handle, const void* data, size_t size,
                        int64_t offset) override;
  Result<void> fsync(int handle) override;
  Result<void> close(int handle) override;
  Result<StatInfo> fstat(int handle) override;
  Result<int> stream_fd(int handle) override;

  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  Result<std::string> read_file(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;

  Result<std::pair<uint64_t, uint64_t>> statfs() override;

  const std::string& root() const { return root_; }

 private:
  struct OpenHandle {
    int fd = -1;
    std::string path;  // canonical virtual path, for charge attribution
  };

  std::string host_path(const std::string& canonical) const;
  Result<int> host_fd(int handle);
  Result<OpenHandle> handle_of(int handle);

  // True when `path` is charged against its allocation (tracking on and the
  // path is not a reserved bookkeeping file).
  bool charged(const std::string& path) const;
  // Size of the regular file at `path`, 0 if absent/not regular.
  uint64_t file_size(const std::string& path) const;
  // One-time seed scan: total regular-file bytes under `canonical_dir`,
  // excluding reserved names.
  uint64_t scan_bytes(const std::string& canonical_dir) const;

  std::string root_;
  std::mutex mutex_;
  std::map<int, OpenHandle> handles_;
  int next_handle_ = 1;
  std::unique_ptr<AllocTracker> alloc_;
};

}  // namespace tss::chirp
