# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/acl_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/chirp_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/adapter_test[1]_include.cmake")
include("/root/repo/build/tests/parrot_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/gems_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/bench_harness_test[1]_include.cmake")
