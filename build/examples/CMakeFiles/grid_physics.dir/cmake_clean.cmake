file(REMOVE_RECURSE
  "CMakeFiles/grid_physics.dir/grid_physics.cpp.o"
  "CMakeFiles/grid_physics.dir/grid_physics.cpp.o.d"
  "grid_physics"
  "grid_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
