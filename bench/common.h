// Shared infrastructure for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md §2 for the index and EXPERIMENTS.md for
// paper-vs-measured results). Figures 6-8 share the DSFS scaling harness
// defined here.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fs/stub.h"
#include "obs/metrics.h"
#include "sim/chirp_sim.h"
#include "sim/cluster.h"
#include "util/rand.h"

namespace tss::bench {

// ---------------------------------------------------------------------------
// Output helpers: fixed-width tables in the style of the paper's figures.

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 16) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt_double(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_us(double nanos) {
  return fmt_double(nanos / 1000.0, 1) + " us";
}

// ---------------------------------------------------------------------------
// DSFS scaling harness (Figures 6, 7, 8).
//
// Builds a DSFS on the simulated cluster: server 0 serves double duty as
// directory server; data files are spread round-robin. Clients repeatedly
// pick a file at random and read it whole, exactly the load generator of §7:
// "clients ... select large files randomly and read them out of the
// filesystem". Each logical read mirrors DistFs: fetch the stub from the
// directory server, then open/pread.../close on the data server.

struct DsfsScalingParams {
  int num_servers = 1;
  int num_clients = 16;
  int num_files = 128;
  uint64_t file_bytes = 1 << 20;
  int reads_per_client = 100;
  uint64_t cache_bytes = 512ull << 20;
  // Touch files into cache before measuring (steady state, as in the
  // paper's cache-resident configurations). Files are warmed in order, so
  // when the per-server share exceeds the cache only the tail stays
  // resident — the mixed/disk regimes emerge naturally.
  bool warm_cache = true;
  // §5: "A single file server might be dedicated for use as a DSFS
  // directory, or it might serve double duty as both directory and file
  // server." false = server 0 double-duties (the default elsewhere);
  // true = one extra server holds only the directory tree.
  bool dedicated_directory = false;
  uint64_t seed = 20050101;
};

struct DsfsScalingResult {
  double mb_per_sec = 0;
  double seconds = 0;
  uint64_t bytes_read = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Whole-file logical-read latency (stub fetch + open + pread loop +
  // close), in engine nanoseconds, extracted from the harness's
  // dsfs.read.latency histogram — the same histogram/quantile machinery
  // live servers expose through the stats RPC.
  uint64_t reads_completed = 0;
  uint64_t read_p50 = 0;
  uint64_t read_p95 = 0;
  uint64_t read_p99 = 0;
};

DsfsScalingResult run_dsfs_scaling(const DsfsScalingParams& params);

}  // namespace tss::bench
