// Robustness: hostile and malformed input against live servers.
//
// A TSS file server is exposed to "the world at large" (§4); it must shrug
// off garbage — arbitrary bytes, truncated frames, absurd lengths — with
// clean protocol errors or disconnects, never a crash or a hang, and keep
// serving legitimate clients afterwards.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "db/client.h"
#include "db/server.h"
#include "net/line_stream.h"
#include "util/checksum.h"
#include "util/rand.h"

namespace tss::chirp {
namespace {

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/fuzz_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    options.io_timeout = 2 * kSecond;  // hostile peers time out quickly
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(
        options, std::make_unique<PosixBackend>(root_), std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }
  void TearDown() override {
    server_->stop();
    std::filesystem::remove_all(root_);
  }

  // Verifies a fresh, well-behaved client still gets full service.
  void expect_server_alive() {
    auto client = Client::connect(server_->endpoint());
    ASSERT_TRUE(client.ok()) << client.error().to_string();
    auth::HostnameClientCredential credential;
    ASSERT_TRUE(client.value().authenticate(credential).ok());
    ASSERT_TRUE(client.value().putfile("/alive", "still here").ok());
    EXPECT_EQ(client.value().getfile("/alive").value(), "still here");
  }

  std::string root_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(FuzzTest, RandomBinaryGarbage) {
  Rng rng(0xF022);
  for (int round = 0; round < 10; round++) {
    auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
    ASSERT_TRUE(sock.ok());
    std::string garbage;
    size_t len = 1 + rng.below(2000);
    for (size_t i = 0; i < len; i++) {
      garbage.push_back(static_cast<char>(rng.next()));
    }
    // Best-effort write; the server may disconnect us mid-stream.
    (void)sock.value().write_all(garbage.data(), garbage.size(), kSecond);
    sock.value().close();
  }
  expect_server_alive();
}

TEST_F(FuzzTest, MalformedProtocolLines) {
  const char* lines[] = {
      "",
      "open",
      "open /x",
      "open /x rw",
      "open /x zz 0644",
      "pread -1 -1 -1",
      "pread 999999999999999999999999 1 1",
      "pwrite 3 99999999999999 0",
      "version banana",
      "auth",
      "auth nosuchmethod -",
      "getdir",
      "setacl /x",
      "truncate /x notanumber",
      "completely unknown rpc with args",
      "open /x rw 0644 extra trailing junk here",
  };
  auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  net::LineStream stream(std::move(sock).value(), kSecond);
  for (const char* line : lines) {
    if (!stream.send_line(line).ok()) break;   // disconnect is acceptable
    auto response = stream.read_line();
    if (!response.ok()) break;
    // Whatever came back must be a well-formed error or ok line.
    auto parsed = parse_response_line(response.value());
    EXPECT_TRUE(parsed.ok()) << response.value();
  }
  expect_server_alive();
}

TEST_F(FuzzTest, OversizedDeclaredPayloadIsRejected) {
  auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  net::LineStream stream(std::move(sock).value(), kSecond);
  // Declare a pwrite body far over the RPC cap — the parser must refuse
  // before the server tries to buffer it.
  ASSERT_TRUE(stream.send_line("pwrite 3 99999999999 0").ok());
  auto response = stream.read_line();
  ASSERT_TRUE(response.ok());
  auto parsed = parse_response_line(response.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().err, EMSGSIZE);
  expect_server_alive();
}

TEST_F(FuzzTest, TruncatedPayloadDisconnectsCleanly) {
  auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  net::LineStream stream(std::move(sock).value(), kSecond);
  // Promise 1000 bytes, send 10, disconnect.
  ASSERT_TRUE(stream.send_line("putfile /x 420 1000").ok());
  stream.write_blob("only ten!!", 10);
  (void)stream.flush();
  stream.close();
  expect_server_alive();
}

TEST_F(FuzzTest, EnormousLineIsBounded) {
  auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  // A 10 MB "line" with no newline must not make the server buffer forever.
  std::string flood(10 << 20, 'A');
  (void)sock.value().write_all(flood.data(), flood.size(), 5 * kSecond);
  sock.value().close();
  expect_server_alive();
}

TEST_F(FuzzTest, RandomTokenSoup) {
  // Structured-ish fuzz: random words from the protocol vocabulary glued
  // with random arguments — closer to real parser edge cases than pure
  // binary noise.
  Rng rng(0x50FA);
  const char* words[] = {"open",   "pread",  "close", "stat",  "auth",
                         "getdir", "putfile", "rename", "mkdir", "version",
                         "/x",     "-",      "rw",    "0644",  "99999",
                         "-1",     "%",      "%%2f",  "a b",   "\t"};
  auto sock = net::TcpSocket::connect(server_->endpoint(), kSecond);
  ASSERT_TRUE(sock.ok());
  net::LineStream stream(std::move(sock).value(), kSecond);
  for (int i = 0; i < 200; i++) {
    std::string line;
    size_t parts = 1 + rng.below(5);
    for (size_t j = 0; j < parts; j++) {
      if (j) line += ' ';
      line += words[rng.below(sizeof(words) / sizeof(words[0]))];
    }
    if (!stream.send_line(line).ok()) break;
    auto response = stream.read_line();
    if (!response.ok()) break;
  }
  expect_server_alive();
}

// A hand-driven wire peer for the checksum-capability fuzz below: speaks
// just enough Chirp to negotiate caps, authenticate, and send hostile
// digests.
class RawPeer {
 public:
  static Result<RawPeer> connect(const net::Endpoint& server) {
    TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                         net::TcpSocket::connect(server, kSecond));
    return RawPeer(net::LineStream(std::move(sock), 2 * kSecond));
  }

  // Sends one line and returns the parsed response.
  Result<Response> rpc(const std::string& line) {
    TSS_RETURN_IF_ERROR(stream_.send_line(line));
    TSS_ASSIGN_OR_RETURN(std::string reply, stream_.read_line());
    return parse_response_line(reply);
  }

  net::LineStream& stream() { return stream_; }

 private:
  explicit RawPeer(net::LineStream stream) : stream_(std::move(stream)) {}
  net::LineStream stream_;
};

TEST_F(FuzzTest, ChecksumPeerSendingGarbageDigestGetsCleanErrors) {
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  // Negotiate the capability for real: the server must echo it back.
  auto hello = peer.value().rpc("version 1 checksum");
  ASSERT_TRUE(hello.ok());
  ASSERT_EQ(hello.value().err, 0);
  bool echoed = false;
  for (const std::string& arg : hello.value().args) {
    if (arg == kCapChecksum) echoed = true;
  }
  ASSERT_TRUE(echoed);
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);

  auto opened = peer.value().rpc("open /victim wc 0644");
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened.value().err, 0);
  std::string fd = opened.value().args[0];

  // Truncated and garbage digest tokens on pwrite: the line must be
  // refused before any payload is consumed — a clean EPROTO, not a hang
  // waiting for bytes the parse already rejected.
  for (const char* token : {"deadbeef", "NOTAHEXNOTAHEX!!", "0x12345678"}) {
    auto bad = peer.value().rpc("pwrite " + fd + " 5 0 " + token);
    ASSERT_TRUE(bad.ok()) << token;
    EXPECT_EQ(bad.value().err, EPROTO) << token;
  }

  // Well-formed but wrong digest: the payload is consumed, verified, and
  // refused with the typed integrity errno — and never reaches the file.
  peer.value().stream().write_line("pwrite " + fd + " 5 0 0000000000000000");
  peer.value().stream().write_blob("hello", 5);
  ASSERT_TRUE(peer.value().stream().flush().ok());
  auto reply = peer.value().stream().read_line();
  ASSERT_TRUE(reply.ok());
  auto parsed = parse_response_line(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().err, EBADMSG);
  auto info = peer.value().rpc("fstat " + fd);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.value().err, 0);
  EXPECT_EQ(info.value().args[0], "0");  // nothing was written

  expect_server_alive();
}

TEST_F(FuzzTest, ChecksumPeerSendingBadPutfileTrailerLosesTheFile) {
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  ASSERT_EQ(peer.value().rpc("version 1 checksum").value().err, 0);
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);

  // Wrong digest value: the server must refuse the op and unlink the
  // damaged file rather than leave silent corruption at rest.
  peer.value().stream().write_line("putfile /rotten 420 5");
  peer.value().stream().write_blob("hello", 5);
  peer.value().stream().write_line("sum 0000000000000000");
  ASSERT_TRUE(peer.value().stream().flush().ok());
  auto reply = peer.value().stream().read_line();
  ASSERT_TRUE(reply.ok());
  auto parsed = parse_response_line(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().err, EBADMSG);
  EXPECT_NE(peer.value().rpc("stat /rotten").value().err, 0);

  // Garbage trailer line: same story, with a protocol error instead.
  peer.value().stream().write_line("putfile /mangled 420 5");
  peer.value().stream().write_blob("hello", 5);
  peer.value().stream().write_line("sum NOTAHEXNOTAHEX!!");
  ASSERT_TRUE(peer.value().stream().flush().ok());
  reply = peer.value().stream().read_line();
  ASSERT_TRUE(reply.ok());
  parsed = parse_response_line(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().err, EPROTO);
  EXPECT_NE(peer.value().rpc("stat /mangled").value().err, 0);

  // A correct trailer on the same connection still works — the failures
  // above poisoned nothing.
  std::string payload = "verified";
  peer.value().stream().write_line(
      "putfile /clean 420 " + std::to_string(payload.size()));
  peer.value().stream().write_blob(payload.data(), payload.size());
  peer.value().stream().write_line(encode_sum_line(fnv1a64(payload)));
  ASSERT_TRUE(peer.value().stream().flush().ok());
  reply = peer.value().stream().read_line();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(parse_response_line(reply.value()).value().err, 0);
  EXPECT_EQ(peer.value().rpc("stat /clean").value().err, 0);

  expect_server_alive();
}

TEST_F(FuzzTest, ChecksumPeerOmittingTheTrailerIsReapedNotServed) {
  // Negotiates checksums, sends a full putfile body, then goes silent
  // instead of sending the trailer. The op must not complete (the bytes are
  // unverified) and the server must not wedge: the io timeout reaps us.
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  ASSERT_EQ(peer.value().rpc("version 1 checksum").value().err, 0);
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);
  peer.value().stream().write_line("putfile /half 420 5");
  peer.value().stream().write_blob("hello", 5);
  ASSERT_TRUE(peer.value().stream().flush().ok());
  // No trailer, no response: the read must end with the server dropping us,
  // not with an ok.
  auto reply = peer.value().stream().read_line();
  EXPECT_FALSE(reply.ok());
  expect_server_alive();
}

// Fuzzing the allocation RPCs needs a tenancy-enabled server; the base
// fixture keeps allocations off so capability-less behaviour stays covered.
class AllocFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/allocfuzz_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    options.io_timeout = 2 * kSecond;
    options.enable_allocations = true;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(
        options, std::make_unique<PosixBackend>(root_), std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }
  void TearDown() override {
    server_->stop();
    std::filesystem::remove_all(root_);
  }

  AllocTracker& tracker() {
    return *static_cast<PosixBackend&>(server_->backend()).alloc_tracker();
  }

  // Verifies a fresh, well-behaved client still gets full service.
  void expect_server_alive() {
    auto client = Client::connect(server_->endpoint());
    ASSERT_TRUE(client.ok()) << client.error().to_string();
    auth::HostnameClientCredential credential;
    ASSERT_TRUE(client.value().authenticate(credential).ok());
    ASSERT_TRUE(client.value().putfile("/alive", "still here").ok());
    EXPECT_EQ(client.value().getfile("/alive").value(), "still here");
  }

  std::string root_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(AllocFuzzTest, GarbledMkallocLinesLeaveNoPhantomAllocation) {
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  auto hello = peer.value().rpc("version 1 alloc");
  ASSERT_TRUE(hello.ok());
  ASSERT_EQ(hello.value().err, 0);
  bool echoed = false;
  for (const std::string& arg : hello.value().args) {
    if (arg == kCapAlloc) echoed = true;
  }
  ASSERT_TRUE(echoed);
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);

  // Every way to garble an allocation request. `want == 0` means "any
  // error": the line parses (the arg extractor ignores trailing junk) but
  // must still be refused downstream — and never create state.
  struct Garble {
    const char* line;
    int want;
  };
  const Garble garbles[] = {
      {"mkalloc", EPROTO},
      {"mkalloc /x", EPROTO},
      {"mkalloc /x 0", EPROTO},  // a zero limit is the absence of a budget
      {"mkalloc /x notanumber", EPROTO},
      {"mkalloc /x -5", EPROTO},
      {"mkalloc /x 184467440737095516160", EPROTO},  // > UINT64_MAX
      {"lsalloc", EPROTO},
      {"mkalloc /nosuchdir 1000", ENOENT},
      {"mkalloc /x 100 extra trailing junk", 0},
  };
  for (const Garble& g : garbles) {
    auto resp = peer.value().rpc(g.line);
    ASSERT_TRUE(resp.ok()) << g.line;
    EXPECT_NE(resp.value().err, 0) << g.line;
    if (g.want != 0) EXPECT_EQ(resp.value().err, g.want) << g.line;
  }

  // None of that minted an allocation: the tracker still knows only "/".
  auto entries = tracker().snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].root, "/");
  EXPECT_EQ(entries[0].inuse, 0u);

  // The connection is not poisoned: a well-formed mkalloc still works.
  ASSERT_EQ(peer.value().rpc("mkdir /real 493").value().err, 0);
  EXPECT_EQ(peer.value().rpc("mkalloc /real 1000").value().err, 0);
  EXPECT_EQ(tracker().snapshot().size(), 2u);
  expect_server_alive();
}

TEST_F(AllocFuzzTest, AllocRpcsWithoutTheNegotiatedCapabilityAreUnknown) {
  // The session never offered "alloc", so the RPCs do not exist for it —
  // even though the server tracks allocations for capable peers.
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  ASSERT_EQ(peer.value().rpc("version 1").value().err, 0);
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);
  EXPECT_EQ(peer.value().rpc("mkalloc / 1000").value().err, ENOSYS);
  EXPECT_EQ(peer.value().rpc("lsalloc /").value().err, ENOSYS);
  EXPECT_EQ(tracker().snapshot().size(), 1u);
  expect_server_alive();
}

TEST_F(FuzzTest, AllocCapabilityIsNotEchoedByATenancyDisabledServer) {
  // The base fixture's server has no tracker: offering "alloc" must not get
  // it echoed, and the RPCs stay unknown — byte-compatible degradation.
  auto peer = RawPeer::connect(server_->endpoint());
  ASSERT_TRUE(peer.ok());
  auto hello = peer.value().rpc("version 1 alloc");
  ASSERT_TRUE(hello.ok());
  ASSERT_EQ(hello.value().err, 0);
  for (const std::string& arg : hello.value().args) {
    EXPECT_NE(arg, kCapAlloc);
  }
  ASSERT_EQ(peer.value().rpc("auth hostname -").value().err, 0);
  EXPECT_EQ(peer.value().rpc("mkalloc / 1000").value().err, ENOSYS);
  EXPECT_EQ(peer.value().rpc("lsalloc /").value().err, ENOSYS);
  expect_server_alive();
}

// A scripted hostile *server* for the reply fuzz below: accepts one real
// Client, answers its version hello with a fixed greeting (echoing whatever
// capability the test wants the client to believe in), then replays a fixed
// list of reply lines — one per subsequent request — without ever looking at
// what the request was.
class HostileRedirectServer {
 public:
  explicit HostileRedirectServer(std::vector<std::string> replies,
                                 std::string hello = "ok 1 redirect")
      : replies_(std::move(replies)), hello_(std::move(hello)) {
    auto listener = net::TcpListener::listen("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok());
    listener_ = std::make_unique<net::TcpListener>(std::move(listener).value());
    serve_ = std::thread([this] { serve(); });
  }

  ~HostileRedirectServer() {
    if (serve_.joinable()) serve_.join();
  }

  net::Endpoint endpoint() const {
    return net::Endpoint{"127.0.0.1", listener_->port()};
  }

 private:
  void serve() {
    auto sock = listener_->accept(5 * kSecond);
    if (!sock.ok()) return;
    net::LineStream stream(std::move(sock).value(), 5 * kSecond);
    if (!stream.read_line().ok()) return;  // the version hello
    if (!stream.send_line(hello_).ok()) return;
    for (const std::string& reply : replies_) {
      if (!stream.read_line().ok()) return;
      if (!stream.send_line(reply).ok()) return;
    }
  }

  std::vector<std::string> replies_;
  std::string hello_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread serve_;
};

TEST_F(FuzzTest, GarbledRedirectRepliesAreCleanProtocolErrors) {
  // Every way a peer can garble a deflection: wrong arity (short and long),
  // port zero, port out of range, non-numeric port and ttl, negative ttl.
  // Each must surface as a clean EPROTO from the strict parse — never a
  // crash, a hang, or a half-parsed redirect the client tries to follow.
  const std::vector<std::string> hostile = {
      "redirect",
      "redirect onlyhost",
      "redirect onlyhost 80",
      "redirect host 80 1000 extra trailing junk",
      "redirect host 0 1000",
      "redirect host 70000 1000",
      "redirect host notaport 1000",
      "redirect host 80 notattl",
      "redirect host 80 -1",
  };
  HostileRedirectServer server(hostile);
  Client::Options options;
  options.cooperative = true;
  auto client = Client::connect(server.endpoint(), options);
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  for (const std::string& line : hostile) {
    auto r = client.value().getfile("/x");
    ASSERT_FALSE(r.ok()) << line;
    EXPECT_EQ(r.error().code, EPROTO) << line;
    // A garbled hint is no hint: nothing to remember, nothing to follow.
    EXPECT_FALSE(client.value().last_redirect().has_value()) << line;
  }
}

TEST_F(FuzzTest, WellFormedRedirectWithoutADialerIsEremote) {
  HostileRedirectServer server({"redirect 127.0.0.1 9 60000"});
  Client::Options options;
  options.cooperative = true;  // offers the capability, cannot follow
  auto client = Client::connect(server.endpoint(), options);
  ASSERT_TRUE(client.ok());
  auto r = client.value().getfile("/x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, EREMOTE);
  ASSERT_TRUE(client.value().last_redirect().has_value());
  EXPECT_EQ(client.value().last_redirect()->port, 9);
}

TEST_F(FuzzTest, RedirectReplyToANonGetfileIsRejected) {
  // Deflection is a getfile-only answer; a server trying to redirect a
  // mutation must be refused at the roundtrip layer, not obeyed.
  HostileRedirectServer server({"redirect 127.0.0.1 9 60000"});
  Client::Options options;
  options.cooperative = true;
  auto client = Client::connect(server.endpoint(), options);
  ASSERT_TRUE(client.ok());
  auto r = client.value().putfile("/x", "payload");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, EPROTO);
}

TEST_F(FuzzTest, RedirectReplyToANonCooperativeSessionIsRejected) {
  // The session never offered the capability, so a redirect reply is a
  // protocol violation even on getfile — old clients must not be deflected.
  HostileRedirectServer server({"redirect 127.0.0.1 9 60000"});
  auto client = Client::connect(server.endpoint(), Client::Options{});
  ASSERT_TRUE(client.ok());
  auto r = client.value().getfile("/x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, EPROTO);
}

TEST_F(FuzzTest, ScriptedQuotaRejectRepliesSurfaceAsCleanEdquot) {
  // A throttling server answers over-quota requests with a typed error
  // reply; the client must surface it verbatim as EDQUOT — and stay usable
  // for the next request, because a quota refusal is not a broken session.
  const std::string reject =
      "error " + std::to_string(EDQUOT) + " quota%20exceeded";
  HostileRedirectServer server({reject, reject, reject}, "ok 1");
  auto client = Client::connect(server.endpoint(), Client::Options{});
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  auto got = client.value().getfile("/x");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, EDQUOT);
  EXPECT_EQ(got.error().message, "quota exceeded");
  auto info = client.value().stat("/x");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.error().code, EDQUOT);
  auto again = client.value().getfile("/x");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, EDQUOT);
}

TEST_F(FuzzTest, GarbledLsallocRepliesAreCleanProtocolErrors) {
  // Every way a peer can garble an allocation listing: empty, short, and
  // non-numeric limit/inuse fields. The strict client parse must refuse
  // each with EPROTO — never hand back a half-parsed budget.
  const std::vector<std::string> hostile = {
      "ok",
      "ok %2Fx",
      "ok %2Fx 5",
      "ok %2Fx notanum 7",
      "ok %2Fx 7 notanum",
  };
  HostileRedirectServer server(hostile, "ok 1 alloc");
  Client::Options options;
  options.alloc_ops = true;
  auto client = Client::connect(server.endpoint(), options);
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  EXPECT_TRUE(client.value().alloc_enabled());
  for (const std::string& line : hostile) {
    auto r = client.value().lsalloc("/x");
    ASSERT_FALSE(r.ok()) << line;
    EXPECT_EQ(r.error().code, EPROTO) << line;
  }
}

TEST_F(FuzzTest, DbServerSurvivesGarbageToo) {
  db::Server db_server{db::Server::Options{}};
  ASSERT_TRUE(db_server.start().ok());
  Rng rng(0xDBDB);
  for (int round = 0; round < 5; round++) {
    auto sock = net::TcpSocket::connect(db_server.endpoint(), kSecond);
    ASSERT_TRUE(sock.ok());
    std::string garbage;
    for (int i = 0; i < 500; i++) garbage.push_back((char)rng.next());
    (void)sock.value().write_all(garbage.data(), garbage.size(), kSecond);
  }
  // Clean client still works.
  auto client = db::Client::connect(db_server.endpoint());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().mktable("t", {}).ok());
  EXPECT_TRUE(client.value().put("t", {{"id", "1"}}).ok());
  db_server.stop();
}

}  // namespace
}  // namespace tss::chirp
