# Empty compiler generated dependencies file for tss_syscall_worker.
# This may be replaced when dependencies are built.
