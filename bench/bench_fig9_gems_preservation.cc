// Figure 9 — "Data Preservation in the GEMS Distributed Shared Database".
//
// Paper: "A modest data set of 14 GB is entered into GEMS for safekeeping.
// The user specifies that up to 40 GB of space may be used to store this
// dataset. Once a single copy of the data is accepted, the replicator
// process then works to replicate the data until the storage limit has been
// reached. At three points during the life of this run, three failures are
// induced by forcibly deleting data from one, five, and ten disks. As the
// auditor process discovers the losses, the replicator brings the system
// back into a desired state."
//
// This harness is the simulation twin of src/gems (whose real auditor/
// replicator logic is exercised against live filesystems in
// tests/gems/gems_test.cc): the same policy — replicate the least-
// replicated dataset within a space budget; repair what the auditor finds
// missing — driven over the simulated cluster, where copies cost real
// (virtual) disk and network time, so the recovery slopes in the series
// come from hardware limits, not scripting.
#include <set>

#include "bench/common.h"
#include "sim/cluster.h"

namespace tss::bench {
namespace {

using sim::Cluster;
using sim::Engine;
using sim::Task;

constexpr int kServers = 20;
constexpr int kFiles = 140;
constexpr uint64_t kFileBytes = 100ull << 20;      // 140 x 100 MB = 14 GB
constexpr uint64_t kBudget = 40ull << 30;          // 40 GB
constexpr double kDiskBytesPerSec = 10.0e6;        // per-server disk
constexpr Nanos kAuditPeriod = 120 * kSecond;
constexpr Nanos kReplicatorIdle = 10 * kSecond;    // poll when nothing to do
constexpr Nanos kSamplePeriod = 100 * kSecond;

struct State {
  Engine* engine = nullptr;
  Cluster* cluster = nullptr;
  std::vector<int> server_nodes;
  // believed[f] = servers the catalog thinks hold file f;
  // actual[f]   = servers that really hold it (failures diverge the two
  //               until the auditor reconciles them).
  std::vector<std::set<int>> believed, actual;
  std::vector<std::unique_ptr<sim::RateQueue>> disks;
  bool ingest_done = false;

  uint64_t actual_bytes() const {
    uint64_t replicas = 0;
    for (const auto& s : actual) replicas += s.size();
    return replicas * kFileBytes;
  }
  uint64_t believed_bytes() const {
    uint64_t replicas = 0;
    for (const auto& s : believed) replicas += s.size();
    return replicas * kFileBytes;
  }
};

// The initial entry of the dataset: one copy of each file pushed from the
// user's node, rate-limited by the receiving server's disk.
Task<void> ingest(State& state, int client_node, Rng* rng) {
  for (int f = 0; f < kFiles; f++) {
    int target = static_cast<int>(rng->below(kServers));
    co_await state.cluster->transfer(client_node,
                                     state.server_nodes[(size_t)target],
                                     kFileBytes);
    Nanos disk_done = state.disks[(size_t)target]->reserve(
        state.engine->now(), kFileBytes);
    co_await state.engine->sleep_until(disk_done);
    state.actual[(size_t)f].insert(target);
    state.believed[(size_t)f].insert(target);
  }
  state.ingest_done = true;
}

// Replicator: repeatedly copy the least-replicated file (by the catalog's
// *believed* state — it can only act on what the auditor has recorded) to a
// server that lacks it, within the space budget.
Task<void> replicator(State& state) {
  while (true) {
    // Stop condition for the harness: budget full and beliefs accurate.
    if (state.engine->now() > 20000 * kSecond) co_return;

    int chosen = -1;
    size_t fewest = SIZE_MAX;
    for (int f = 0; f < kFiles; f++) {
      size_t n = state.believed[(size_t)f].size();
      if (n == 0) continue;  // nothing to copy from
      if (n < fewest && n < kServers) {
        fewest = n;
        chosen = f;
      }
    }
    bool under_budget =
        state.believed_bytes() + kFileBytes <= kBudget;
    if (chosen < 0 || !under_budget) {
      co_await state.engine->sleep_for(kReplicatorIdle);
      continue;
    }
    // Every file should reach at least the fewest+1 level before topping
    // up; with a 40 GB budget over 14 GB the steady state is ~2.85 copies.
    int src = *state.believed[(size_t)chosen].begin();
    int dst = -1;
    for (int s = 0; s < kServers; s++) {
      int candidate = (src + 1 + s) % kServers;
      if (!state.believed[(size_t)chosen].count(candidate)) {
        dst = candidate;
        break;
      }
    }
    if (dst < 0) {
      co_await state.engine->sleep_for(kReplicatorIdle);
      continue;
    }
    // The copy: source disk read, network transfer, destination disk write.
    Nanos read_done =
        state.disks[(size_t)src]->reserve(state.engine->now(), kFileBytes);
    co_await state.engine->sleep_until(read_done);
    co_await state.cluster->transfer(state.server_nodes[(size_t)src],
                                     state.server_nodes[(size_t)dst],
                                     kFileBytes);
    Nanos write_done =
        state.disks[(size_t)dst]->reserve(state.engine->now(), kFileBytes);
    co_await state.engine->sleep_until(write_done);

    // A source that died mid-copy yields a failed copy.
    if (state.actual[(size_t)chosen].count(src)) {
      state.actual[(size_t)chosen].insert(dst);
    }
    state.believed[(size_t)chosen] =
        state.actual[(size_t)chosen].count(src)
            ? state.believed[(size_t)chosen]
            : state.believed[(size_t)chosen];
    state.believed[(size_t)chosen].insert(dst);
    // Reconcile immediately for the copy we just made; the *losses* are
    // still only discovered by the auditor.
    if (!state.actual[(size_t)chosen].count(dst)) {
      state.believed[(size_t)chosen].erase(dst);
    }
  }
}

// Auditor: periodically verifies every believed replica against reality;
// "if it discovers that files have been damaged or removed, it makes note
// of these problems" — here, by correcting the believed set the replicator
// works from.
Task<void> auditor(State& state) {
  while (state.engine->now() <= 20000 * kSecond) {
    co_await state.engine->sleep_for(kAuditPeriod);
    int checks = 0;
    for (int f = 0; f < kFiles; f++) {
      std::set<int> verified;
      for (int s : state.believed[(size_t)f]) {
        checks++;
        if (state.actual[(size_t)f].count(s)) verified.insert(s);
      }
      state.believed[(size_t)f] = verified;
    }
    // Each verification is a stat RPC: charge a little time.
    co_await state.engine->sleep_for(checks * kMillisecond);
  }
}

// Failure injection: forcibly delete all data on `count` servers.
Task<void> fail_servers(State& state, Nanos at, int first_server, int count) {
  co_await state.engine->sleep_until(at);
  for (int s = first_server; s < first_server + count; s++) {
    for (int f = 0; f < kFiles; f++) {
      state.actual[(size_t)f].erase(s % kServers);
    }
  }
}

Task<void> sampler(State& state, std::vector<std::pair<double, double>>* out) {
  while (state.engine->now() <= 20000 * kSecond) {
    out->push_back({double(state.engine->now()) / 1e9,
                    double(state.actual_bytes()) / double(1ull << 30)});
    co_await state.engine->sleep_for(kSamplePeriod);
  }
}

}  // namespace
}  // namespace tss::bench

int main() {
  using namespace tss::bench;
  using namespace tss;

  sim::Engine engine;
  sim::Cluster::Config net;
  sim::Cluster cluster(engine, net);

  State state;
  state.engine = &engine;
  state.cluster = &cluster;
  state.believed.resize(kFiles);
  state.actual.resize(kFiles);
  for (int s = 0; s < kServers; s++) {
    state.server_nodes.push_back(cluster.add_node());
    state.disks.push_back(
        std::make_unique<sim::RateQueue>(engine, kDiskBytesPerSec));
  }
  int client_node = cluster.add_node();

  Rng rng(20050912);
  spawn(engine, ingest(state, client_node, &rng));
  spawn(engine, replicator(state));
  spawn(engine, auditor(state));
  // Failures at 6000 s (1 disk), 10000 s (5 disks), 14000 s (10 disks).
  spawn(engine, fail_servers(state, 6000 * kSecond, 3, 1));
  spawn(engine, fail_servers(state, 10000 * kSecond, 5, 5));
  spawn(engine, fail_servers(state, 14000 * kSecond, 8, 10));

  std::vector<std::pair<double, double>> series;
  spawn(engine, sampler(state, &series));
  engine.run();

  print_header(
      "Figure 9: data preservation in the GEMS distributed shared database",
      "14 GB dataset, 40 GB budget, 20 simulated servers (10 MB/s disks).\n"
      "Failures delete data from 1, 5, and 10 disks at t=6000/10000/14000 s.\n"
      "Paper shape: fill to the budget, sharp drops at each failure, then\n"
      "auditor detection + replicator recovery back to the budget.");
  print_row({"time (s)", "stored (GB)", "timeline"});
  for (const auto& [t, gb] : series) {
    int bars = static_cast<int>(gb);
    print_row({fmt_double(t, 0), fmt_double(gb, 1), std::string(bars, '#')});
  }
  return 0;
}
