file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dsfs_disk.dir/bench_fig8_dsfs_disk.cc.o"
  "CMakeFiles/bench_fig8_dsfs_disk.dir/bench_fig8_dsfs_disk.cc.o.d"
  "bench_fig8_dsfs_disk"
  "bench_fig8_dsfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dsfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
