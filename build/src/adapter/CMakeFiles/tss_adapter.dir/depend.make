# Empty dependencies file for tss_adapter.
# This may be replaced when dependencies are built.
