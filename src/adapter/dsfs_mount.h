// Self-describing DSFS volumes and their adapter mounts.
//
// The paper's mountlist example maps "/data" to
// "/dsfs/archive.cse.nd.edu@run5/data" (§6): a DSFS is named by its
// directory server plus a volume name. For a client to mount it knowing
// only that pair, the volume must describe itself — so a volume is a
// directory on the directory server containing:
//
//   /<volume>/.tssvol     the manifest: data server names and endpoints
//   /<volume>/tree        the DSFS directory tree (stub files)
//
// create_volume() writes that layout; mount_volume() reads the manifest,
// connects a CfsFs to every data server, and assembles the DistFs. The
// Adapter uses these to auto-mount "/dsfs/<host:port>@<volume>/..." paths.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/auth.h"
#include "fs/cfs.h"
#include "fs/dist.h"
#include "fs/subtree.h"

namespace tss::adapter {

// Manifest contents.
struct VolumeManifest {
  // name -> endpoint of every data server.
  std::map<std::string, net::Endpoint> servers;
  // Data directory on each data server (the DistFs volume path).
  std::string data_dir;

  std::string serialize() const;
  static Result<VolumeManifest> parse(std::string_view text);
};

// A mounted DSFS: owns the connections, the tree view, and the DistFs
// that uses them (declaration order matters for destruction).
struct DsfsMount {
  std::unique_ptr<fs::CfsFs> directory_mount;
  std::vector<std::unique_ptr<fs::CfsFs>> data_mounts;
  std::unique_ptr<fs::SubtreeFs> metadata_view;
  std::unique_ptr<fs::DistFs> dsfs;

  fs::FileSystem* filesystem() { return dsfs.get(); }
};

struct DsfsMountOptions {
  std::vector<std::shared_ptr<auth::ClientCredential>> credentials;
  fs::RetryPolicy retry;
  Nanos io_timeout = 30 * kSecond;
};

// Creates the volume layout on the directory server: manifest, tree
// directory, and the data directory on every listed data server.
Result<void> create_volume(const net::Endpoint& directory_server,
                           const std::string& volume,
                           const std::map<std::string, net::Endpoint>& servers,
                           const DsfsMountOptions& options);

// Mounts an existing volume by reading its manifest.
Result<std::unique_ptr<DsfsMount>> mount_volume(
    const net::Endpoint& directory_server, const std::string& volume,
    const DsfsMountOptions& options);

}  // namespace tss::adapter
