file(REMOVE_RECURSE
  "CMakeFiles/tss_gems.dir/gems.cc.o"
  "CMakeFiles/tss_gems.dir/gems.cc.o.d"
  "libtss_gems.a"
  "libtss_gems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_gems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
