// Server admission control and idle-session reaping: a leaking or stalled
// client population must not be able to exhaust a Chirp server.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

namespace tss::chirp {
namespace {

class ServerLimitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/limits_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
  }

  void start_server(size_t max_connections, Nanos idle_timeout = 0) {
    ServerOptions options;
    options.owner = "hostname:localhost";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    options.max_connections = max_connections;
    options.idle_timeout = idle_timeout;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(
        options, std::make_unique<PosixBackend>(root_), std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }

  Result<Client> connect() {
    Client::Options options;
    options.timeout = 5 * kSecond;
    return Client::connect(server_->endpoint(), options);
  }

  Result<auth::Subject> authenticate(Client& client) {
    auth::HostnameClientCredential credential;
    return client.authenticate(credential);
  }

  // The server notices a closed/reaped session asynchronously; wait for the
  // active count to settle instead of racing it.
  bool wait_for_active(size_t want, Nanos deadline = 5 * kSecond) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(deadline);
    while (std::chrono::steady_clock::now() < until) {
      if (server_->active_sessions() == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return server_->active_sessions() == want;
  }

  std::string root_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(ServerLimitsTest, ConnectionCapRefusesTheExcessClientFast) {
  start_server(/*max_connections=*/2);
  auto c1 = connect();
  auto c2 = connect();
  ASSERT_TRUE(c1.ok()) << c1.error().to_string();
  ASSERT_TRUE(c2.ok()) << c2.error().to_string();
  ASSERT_TRUE(wait_for_active(2));

  // The third client is refused at admission: the server answers its first
  // RPC with a protocol-level EBUSY error line before closing, so the client
  // knows it was the connection limit — not a crash or a network fault.
  auto c3 = connect();
  ASSERT_FALSE(c3.ok());
  EXPECT_EQ(c3.error().code, EBUSY) << c3.error().to_string();
  EXPECT_GE(server_->rejected_connections(), 1u);

  // The admitted sessions are unharmed.
  ASSERT_TRUE(authenticate(c1.value()).ok());
  ASSERT_TRUE(c1.value().mkdir("/survived").ok());
}

TEST_F(ServerLimitsTest, ClosingASessionFreesASlot) {
  start_server(/*max_connections=*/1);
  auto c1 = connect();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(wait_for_active(1));
  ASSERT_FALSE(connect().ok());  // at capacity

  c1.value().close();
  ASSERT_TRUE(wait_for_active(0));
  auto c2 = connect();
  ASSERT_TRUE(c2.ok()) << c2.error().to_string();
  ASSERT_TRUE(authenticate(c2.value()).ok());
  EXPECT_TRUE(c2.value().mkdir("/after-reuse").ok());
}

TEST_F(ServerLimitsTest, IdleSessionIsReaped) {
  start_server(/*max_connections=*/0, /*idle_timeout=*/200 * kMillisecond);
  auto c1 = connect();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(authenticate(c1.value()).ok());
  ASSERT_TRUE(c1.value().mkdir("/before-stall").ok());

  // The client goes quiet; the server drops the session and frees its state.
  ASSERT_TRUE(wait_for_active(0));
  auto rc = c1.value().stat("/before-stall");
  ASSERT_FALSE(rc.ok());
  EXPECT_TRUE(rc.error().code == EPIPE || rc.error().code == ECONNRESET)
      << rc.error().to_string();

  // The server itself is fine — new sessions are served normally.
  auto c2 = connect();
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(authenticate(c2.value()).ok());
  EXPECT_TRUE(c2.value().stat("/before-stall").ok());
}

TEST_F(ServerLimitsTest, ActiveSessionIsNotReaped) {
  start_server(/*max_connections=*/0, /*idle_timeout=*/300 * kMillisecond);
  auto c1 = connect();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(authenticate(c1.value()).ok());
  // Keep talking at a rate well under the idle timeout: the reaper must not
  // fire between requests of a live session.
  for (int i = 0; i < 6; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    ASSERT_TRUE(c1.value().whoami().ok()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace tss::chirp
