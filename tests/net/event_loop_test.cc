// The reactor core: timer wheel, readiness loops, resumable sessions,
// partial-I/O resumption, and the clean-shutdown race.
#include "net/event_loop.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server_loop.h"
#include "net/socket.h"

namespace tss::net {
namespace {

#ifdef TSS_TSAN_BUILD
constexpr int kManyConns = 16;
#else
constexpr int kManyConns = 64;
#endif

// --- TimerWheel (deterministic, no I/O) ------------------------------------

TEST(TimerWheelTest, FiresAfterDelayNotBefore) {
  TimerWheel wheel(/*slots=*/8, /*tick=*/10 * kMillisecond, /*now=*/0);
  int fired = 0;
  wheel.schedule(35 * kMillisecond, [&] { fired++; });
  wheel.advance(30 * kMillisecond);
  EXPECT_EQ(fired, 0);
  wheel.advance(50 * kMillisecond);
  EXPECT_EQ(fired, 1);
  // One-shot: advancing further must not re-fire.
  wheel.advance(500 * kMillisecond);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, DelayLongerThanOneRevolution) {
  // 8 slots x 10ms = one 80ms revolution; 250ms needs several rounds.
  TimerWheel wheel(8, 10 * kMillisecond, 0);
  int fired = 0;
  wheel.schedule(250 * kMillisecond, [&] { fired++; });
  wheel.advance(240 * kMillisecond);
  EXPECT_EQ(fired, 0);
  wheel.advance(260 * kMillisecond);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(8, 10 * kMillisecond, 0);
  int fired = 0;
  uint64_t id = wheel.schedule(20 * kMillisecond, [&] { fired++; });
  wheel.schedule(20 * kMillisecond, [&] { fired += 10; });
  wheel.cancel(id);
  wheel.advance(100 * kMillisecond);
  EXPECT_EQ(fired, 10);  // only the uncancelled entry
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextTick) {
  TimerWheel wheel(8, 10 * kMillisecond, 0);
  int fired = 0;
  wheel.schedule(0, [&] { fired++; });
  EXPECT_EQ(fired, 0);  // never fires synchronously inside schedule()
  wheel.advance(10 * kMillisecond);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, ManyTimersAcrossSlots) {
  TimerWheel wheel(16, 5 * kMillisecond, 0);
  std::vector<int> fired;
  for (int i = 1; i <= 40; i++) {
    wheel.schedule(i * 5 * kMillisecond, [&fired, i] { fired.push_back(i); });
  }
  wheel.advance(40 * 5 * kMillisecond);
  ASSERT_EQ(fired.size(), 40u);
  // Firing order follows the deadlines.
  for (int i = 0; i < 40; i++) EXPECT_EQ(fired[i], i + 1);
}

// --- Test sessions ----------------------------------------------------------

// Echoes every complete line back. Closes on EOF.
class EchoSession : public ReactorSession {
 public:
  explicit EchoSession(std::atomic<int>* closes = nullptr)
      : closes_(closes) {}

  bool on_input(Conn& c) override {
    while (true) {
      auto line = c.input().try_line();
      if (!line.ok()) return false;
      if (!line.value().has_value()) break;
      c.write(*line.value() + "\n");
    }
    return !c.input_eof();
  }
  void on_close(Conn&) override {
    if (closes_) closes_->fetch_add(1);
  }

 private:
  std::atomic<int>* closes_;
};

// On "send <n>\n", streams n bytes of a repeating pattern through the
// output-space callback, then closes. Exercises watermark-paced production
// and partial-write resumption.
class BlastSession : public ReactorSession {
 public:
  bool on_input(Conn& c) override {
    auto line = c.input().try_line();
    if (!line.ok()) return false;
    if (!line.value().has_value()) return !c.input_eof();
    remaining_ = std::stoull(line.value()->substr(5));
    c.want_output_space(true);
    return on_output_space(c);
  }

  bool on_output_space(Conn& c) override {
    while (remaining_ > 0 && c.output_pending() < Conn::kOutputHighWater) {
      char chunk[8192];
      size_t n = std::min(remaining_, sizeof chunk);
      for (size_t i = 0; i < n; i++) {
        chunk[i] = static_cast<char>('a' + (sent_ + i) % 26);
      }
      c.write(std::string_view(chunk, n));
      sent_ += n;
      remaining_ -= n;
    }
    if (remaining_ == 0) {
      c.want_output_space(false);
      c.close();  // graceful: flushes the tail first
    }
    return true;
  }

 private:
  size_t remaining_ = 0;
  size_t sent_ = 0;
};

// Applies a no-progress timeout; the default on_timeout closes.
class ExpiringSession : public ReactorSession {
 public:
  explicit ExpiringSession(Nanos timeout) : timeout_(timeout) {}
  void on_start(Conn& c) override { c.set_timeout(timeout_); }
  bool on_input(Conn& c) override { return !c.input_eof(); }

 private:
  Nanos timeout_;
};

// Captures its ConnRef so the test can post work from a foreign thread.
class PostTargetSession : public ReactorSession {
 public:
  void on_start(Conn& c) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ref_ = c.ref();
    started_ = true;
    cv_.notify_all();
  }
  bool on_input(Conn& c) override { return !c.input_eof(); }

  ConnRef wait_ref() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return started_; });
    return ref_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  ConnRef ref_;
  bool started_ = false;
};

// --- Harness ----------------------------------------------------------------

class EventLoopTest : public ::testing::TestWithParam<bool> {
 protected:
  void start(int workers = 2) {
    EventLoop::Options options;
    options.workers = workers;
    options.force_poll = GetParam();
    loop_ = std::make_unique<EventLoop>(options);
    ASSERT_TRUE(loop_->start().ok());
    auto listener = TcpListener::listen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener.value());
  }

  // Connects a client and adopts the server end into the loop.
  TcpSocket connect_adopted(std::shared_ptr<ReactorSession> session) {
    auto client = TcpSocket::connect(
        Endpoint{"127.0.0.1", listener_.port()}, 5 * kSecond);
    EXPECT_TRUE(client.ok());
    auto served = listener_.accept(5 * kSecond);
    EXPECT_TRUE(served.ok());
    EXPECT_TRUE(loop_->adopt(std::move(served.value()), std::move(session))
                    .ok());
    return std::move(client.value());
  }

  std::unique_ptr<EventLoop> loop_;
  TcpListener listener_;
};

Result<std::string> read_line_blocking(TcpSocket& sock) {
  std::string line;
  char ch;
  while (true) {
    auto n = sock.read_some(&ch, 1, 5 * kSecond);
    if (!n.ok()) return n.error();
    if (n.value() == 0) return Error(EPIPE, "eof");
    if (ch == '\n') return line;
    line += ch;
  }
}

TEST_P(EventLoopTest, EchoRoundTrips) {
  start();
  TcpSocket client = connect_adopted(std::make_shared<EchoSession>());
  for (int i = 0; i < 10; i++) {
    std::string msg = "hello " + std::to_string(i) + "\n";
    ASSERT_TRUE(client.write_all(msg.data(), msg.size(), kSecond).ok());
    auto echoed = read_line_blocking(client);
    ASSERT_TRUE(echoed.ok()) << echoed.error().to_string();
    EXPECT_EQ(echoed.value() + "\n", msg);
  }
  loop_->stop();
}

TEST_P(EventLoopTest, SplitFramesReassemble) {
  start();
  TcpSocket client = connect_adopted(std::make_shared<EchoSession>());
  // One line delivered a byte at a time; two lines in one segment.
  std::string msg = "split-me\n";
  for (char ch : msg) {
    ASSERT_TRUE(client.write_all(&ch, 1, kSecond).ok());
  }
  auto echoed = read_line_blocking(client);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.value(), "split-me");

  std::string two = "first\nsecond\n";
  ASSERT_TRUE(client.write_all(two.data(), two.size(), kSecond).ok());
  EXPECT_EQ(read_line_blocking(client).value(), "first");
  EXPECT_EQ(read_line_blocking(client).value(), "second");
  loop_->stop();
}

TEST_P(EventLoopTest, ManyConcurrentConnections) {
  start();
  auto closes = std::make_shared<std::atomic<int>>(0);
  std::vector<TcpSocket> clients;
  for (int i = 0; i < kManyConns; i++) {
    clients.push_back(
        connect_adopted(std::make_shared<EchoSession>(closes.get())));
  }
  // Adoption is asynchronous (a task posted to the worker): wait for the
  // registrations rather than racing them.
  auto adopt_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (loop_->active_connections() < static_cast<size_t>(kManyConns) &&
         std::chrono::steady_clock::now() < adopt_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(loop_->active_connections(), static_cast<size_t>(kManyConns));
  for (int i = 0; i < kManyConns; i++) {
    std::string msg = "conn " + std::to_string(i) + "\n";
    ASSERT_TRUE(clients[i].write_all(msg.data(), msg.size(), kSecond).ok());
  }
  for (int i = 0; i < kManyConns; i++) {
    auto echoed = read_line_blocking(clients[i]);
    ASSERT_TRUE(echoed.ok());
    EXPECT_EQ(echoed.value(), "conn " + std::to_string(i));
  }
  // EOF from every client drains the loop and fires on_close exactly once
  // per connection.
  for (auto& c : clients) c.close();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (loop_->active_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(loop_->active_connections(), 0u);
  EXPECT_EQ(closes->load(), kManyConns);
  loop_->stop();
}

TEST_P(EventLoopTest, PartialWritesResumeWithTinySocketBuffers) {
  start();
  auto client = TcpSocket::connect(
      Endpoint{"127.0.0.1", listener_.port()}, 5 * kSecond);
  ASSERT_TRUE(client.ok());
  auto served = listener_.accept(5 * kSecond);
  ASSERT_TRUE(served.ok());
  // Shrink both kernel buffers so a 2 MB stream needs hundreds of partial
  // sends: every one of them must leave the reactor consistent.
  int tiny = 4096;
  ::setsockopt(served.value().raw_fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
               sizeof tiny);
  ::setsockopt(client.value().raw_fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
               sizeof tiny);
  ASSERT_TRUE(
      loop_->adopt(std::move(served.value()), std::make_shared<BlastSession>())
          .ok());

  constexpr size_t kTotal = 2 * 1024 * 1024;
  std::string req = "send " + std::to_string(kTotal) + "\n";
  ASSERT_TRUE(
      client.value().write_all(req.data(), req.size(), kSecond).ok());
  // Read slowly at first so the server's output buffer genuinely fills and
  // the want_write path engages.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::string got;
  char buf[16384];
  while (got.size() < kTotal) {
    auto n = client.value().read_some(buf, sizeof buf, 10 * kSecond);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    if (n.value() == 0) break;
    got.append(buf, n.value());
  }
  ASSERT_EQ(got.size(), kTotal);
  for (size_t i = 0; i < kTotal; i += 37 * 1024) {
    ASSERT_EQ(got[i], static_cast<char>('a' + i % 26)) << "at offset " << i;
  }
  loop_->stop();
}

TEST_P(EventLoopTest, NoProgressTimeoutClosesViaTimerWheel) {
  start();
  TcpSocket client = connect_adopted(
      std::make_shared<ExpiringSession>(100 * kMillisecond));
  char ch;
  auto n = client.read_some(&ch, 1, 10 * kSecond);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(n.value(), 0u);  // orderly EOF: the wheel reaped the session
  loop_->stop();
}

TEST_P(EventLoopTest, ConnRefPostRunsOnLoopThread) {
  start();
  auto session = std::make_shared<PostTargetSession>();
  TcpSocket client = connect_adopted(session);
  ConnRef ref = session->wait_ref();
  std::thread poster(
      [&ref] { ref.post([](Conn& c) { c.write("posted\n"); }); });
  poster.join();
  auto line = read_line_blocking(client);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "posted");
  loop_->stop();
  // Posting after stop is a silent no-op, not a crash.
  ref.post([](Conn& c) { c.write("ghost\n"); });
}

TEST_P(EventLoopTest, StopWithLiveConnectionsIsCleanAndClosesAll) {
  start();
  auto closes = std::make_shared<std::atomic<int>>(0);
  std::vector<TcpSocket> clients;
  for (int i = 0; i < kManyConns; i++) {
    clients.push_back(
        connect_adopted(std::make_shared<EchoSession>(closes.get())));
  }
  // Clients keep writing while the loop shuts down underneath them: the race
  // must end with every session closed exactly once and no deadlock.
  std::atomic<bool> writing{true};
  std::thread writer([&] {
    size_t i = 0;
    while (writing.load()) {
      std::string msg = "racing\n";
      (void)clients[i++ % clients.size()].write_all(msg.data(), msg.size(),
                                                    100 * kMillisecond);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop_->stop();
  writing.store(false);
  writer.join();
  EXPECT_EQ(closes->load(), kManyConns);
  EXPECT_EQ(loop_->active_connections(), 0u);
}

TEST_P(EventLoopTest, AdoptAfterStopIsRefused) {
  start();
  loop_->stop();
  auto client = TcpSocket::connect(
      Endpoint{"127.0.0.1", listener_.port()}, kSecond);
  ASSERT_TRUE(client.ok());
  auto served = listener_.accept(kSecond);
  ASSERT_TRUE(served.ok());
  EXPECT_FALSE(
      loop_->adopt(std::move(served.value()), std::make_shared<EchoSession>())
          .ok());
}

TEST_P(EventLoopTest, AdoptSpreadsConnectionsAcrossWorkersEvenly) {
  start(/*workers=*/4);
  std::vector<TcpSocket> clients;
  for (int i = 0; i < 16; i++) {
    clients.push_back(connect_adopted(std::make_shared<EchoSession>()));
  }
  // adopt() charges the chosen worker's load before posting, so with equal
  // starting loads the least-loaded pick must deal connections out exactly
  // evenly — no waiting for the workers to drain their mailboxes.
  size_t total = 0;
  for (int i = 0; i < loop_->workers(); i++) {
    size_t n = loop_->worker_connections(i);
    EXPECT_EQ(n, 4u) << "worker " << i;
    total += n;
  }
  EXPECT_EQ(total, 16u);

  // Free a slot on one worker; the next adopt must land on that worker.
  // active_connections() trails adopt() (the workers count a connection
  // once they drain it from their mailbox), so wait for the adds to land
  // before and the teardown to land after.
  auto wait_active = [&](size_t want) {
    Nanos deadline = RealClock::instance().now() + 5 * kSecond;
    while (loop_->active_connections() != want &&
           RealClock::instance().now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(loop_->active_connections(), want);
  };
  wait_active(16);
  clients.front().close();
  wait_active(15);
  clients.push_back(connect_adopted(std::make_shared<EchoSession>()));
  for (int i = 0; i < loop_->workers(); i++) {
    EXPECT_EQ(loop_->worker_connections(i), 4u) << "worker " << i;
  }
  loop_->stop();
}

INSTANTIATE_TEST_SUITE_P(Pollers, EventLoopTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

// --- The blocking compatibility driver --------------------------------------

TEST(BlockingDriverTest, ServerLoopThreadModeDrivesSessions) {
  ServerLoop loop;
  ServerLoop::Limits limits;
  limits.mode = Mode::kThreadPerConnection;
  auto rc = loop.start("127.0.0.1", 0,
                       []() -> std::shared_ptr<ReactorSession> {
                         return std::make_shared<EchoSession>();
                       },
                       limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();
  EXPECT_EQ(loop.mode(), Mode::kThreadPerConnection);

  auto client =
      TcpSocket::connect(Endpoint{"127.0.0.1", loop.port()}, 5 * kSecond);
  ASSERT_TRUE(client.ok());
  std::string msg = "blocking-mode\n";
  ASSERT_TRUE(client.value().write_all(msg.data(), msg.size(), kSecond).ok());
  auto echoed = read_line_blocking(client.value());
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.value(), "blocking-mode");
  loop.stop();
}

TEST(BlockingDriverTest, ReactorModeReportsReactor) {
  ServerLoop loop;
  ServerLoop::Limits limits;
  limits.mode = Mode::kReactor;
  auto rc = loop.start("127.0.0.1", 0,
                       []() -> std::shared_ptr<ReactorSession> {
                         return std::make_shared<EchoSession>();
                       },
                       limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();
  EXPECT_EQ(loop.mode(), Mode::kReactor);
  auto client =
      TcpSocket::connect(Endpoint{"127.0.0.1", loop.port()}, 5 * kSecond);
  ASSERT_TRUE(client.ok());
  std::string msg = "reactor-mode\n";
  ASSERT_TRUE(client.value().write_all(msg.data(), msg.size(), kSecond).ok());
  EXPECT_EQ(read_line_blocking(client.value()).value(), "reactor-mode");
  loop.stop();
}

}  // namespace
}  // namespace tss::net
