// The Chirp personal file server over real TCP.
//
// "A basic file server can be deployed by an ordinary user, who runs a
// single command with no configuration" (§3, Rapid Deployment). Construction
// takes an export root and an owner subject; start() binds (ephemeral ports
// supported) and serves until stop(). Each connection runs a resumable
// ServerSession (chirp/reactor_session.h) — on the epoll reactor by default,
// or one blocking thread per connection when ServerOptions::mode (or
// TSS_NET_MODE=thread) selects the legacy engine. Disconnect drops all
// session state, per the paper's failure semantics, in both modes.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "auth/auth.h"
#include "chirp/backend.h"
#include "chirp/quota.h"
#include "chirp/reactor_session.h"
#include "chirp/redirect.h"
#include "chirp/session.h"
#include "net/fair_queue.h"
#include "net/server_loop.h"

namespace tss::chirp {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;            // 0 = ephemeral
  std::string owner;            // owner subject, e.g. "unix:dthain"
  acl::Acl root_acl;            // policy for "/" until a .__acl__ exists
  Nanos io_timeout = 30 * kSecond;
  // Admission control: beyond this many live sessions, new connections are
  // refused immediately (0 = unlimited). A leaking client cannot exhaust
  // the server's threads or descriptors.
  size_t max_connections = 0;
  // Idle-session reaper: a session that sends no request for this long is
  // dropped and all its state freed, exactly as if it had disconnected
  // (0 = wait io_timeout, the pre-existing behaviour). A stalled client
  // cannot pin a session forever.
  Nanos idle_timeout = 0;
  // Metrics registry backing per-op latency histograms, request/byte/error
  // counters, RPC spans, and the `stats` RPC. Null = the process-wide
  // obs::Registry::global(), so every production server is instrumented by
  // default; tests inject their own registry for exact assertions.
  obs::Registry* metrics = nullptr;
  // Execution engine: kAuto resolves via TSS_NET_MODE (default reactor).
  net::Mode mode = net::Mode::kAuto;
  // Reactor worker threads; 0 = net::EventLoop::default_workers().
  int reactor_workers = 0;
  // Acceptor threads (SO_REUSEPORT-sharded listeners where available);
  // <= 1 = a single acceptor. See net::ServerLoop::Limits::acceptors.
  int acceptors = 1;
  // Use the poll() readiness backend instead of epoll.
  bool force_poll = false;
  // Cooperative-cache deflection: when `cache_peers` is non-empty and
  // `redirect_hot_threshold` > 0, getfiles from redirect-capable clients for
  // a path past the threshold are answered with a `redirect` hint to a
  // sibling cache instead of the bytes (chirp/redirect.h). Clients that
  // never offer the capability are always served directly.
  std::vector<Redirect> cache_peers;
  uint64_t redirect_hot_threshold = 0;  // 0 = never deflect
  uint64_t redirect_ttl_ms = 2000;
  // --- Multi-tenancy (docs/MULTITENANCY.md) -------------------------------
  // Space allocations: when true, the server asks its backend to track
  // hierarchical per-directory budgets (journal at "<root>/.__alloc__"),
  // advertises the "alloc" capability, and serves mkalloc/lsalloc.
  // Only PosixBackend supports this; other backends ignore the request.
  bool enable_allocations = false;
  uint64_t root_space_limit = 0;  // 0 = track usage but do not cap the root
  // Per-subject request quotas: zero limits = quotas disabled entirely.
  QuotaManager::Limits default_quota;
  std::map<std::string, QuotaManager::Limits> per_subject_quota;
  // Weighted fair-share admission across subjects: 0 = disabled (the global
  // max_connections EBUSY remains the only backpressure).
  int fair_share_slots = 0;
  int fair_share_backlog = 64;  // queued requests allowed per subject
  std::map<std::string, uint64_t> fair_share_weights;
};

class Server {
 public:
  // Backend and auth registry are injected so tests can fake either; the
  // common case is a PosixBackend plus hostname/unix methods (see
  // make_default_auth below).
  Server(ServerOptions options, std::unique_ptr<Backend> backend,
         std::unique_ptr<auth::ServerAuth> auth);
  ~Server();

  Result<void> start();
  void stop();

  uint16_t port() const { return loop_.port(); }
  net::Endpoint endpoint() const {
    return net::Endpoint{options_.host, loop_.port()};
  }
  // Admission/reaping observability (tests and operators).
  size_t active_sessions() const { return loop_.active_connections(); }
  uint64_t rejected_connections() const {
    return loop_.connections_rejected();
  }
  Backend& backend() { return *backend_; }
  const ServerOptions& options() const { return options_; }

  // Builds a report snapshot for catalog registration: owner, address,
  // space, root ACL.
  struct Info {
    std::string owner;
    net::Endpoint endpoint;
    uint64_t total_bytes = 0;
    uint64_t free_bytes = 0;
    std::string root_acl;
  };
  Info info() const;

 private:
  ServerOptions options_;
  std::unique_ptr<Backend> backend_;
  std::unique_ptr<auth::ServerAuth> auth_;
  std::unique_ptr<RedirectPolicy> redirect_policy_;
  // Tenancy state shared by all sessions; declared before loop_ so sessions
  // never outlive the queue/buckets they point at.
  std::unique_ptr<QuotaManager> quotas_;
  std::unique_ptr<net::FairQueue> fair_;
  ServerConfig config_;
  // Destroyed after loop_ (declared before it): the loop stops first, then
  // the executor joins, and only then do auth_/backend_ go away — no session
  // or auth helper can observe a dangling server.
  std::unique_ptr<AuthExecutor> auth_executor_;
  net::ServerLoop loop_;
};

// Convenience: the default method set an unprivileged owner would enable —
// `hostname` and `unix` (challenge directory defaults to /tmp).
std::unique_ptr<auth::ServerAuth> make_default_auth(
    const std::string& unix_challenge_dir = "/tmp");

}  // namespace tss::chirp
