// Chirp backend over a real host filesystem.
//
// The export root is any directory the server's owner chooses ("allowing any
// user to export fresh space or existing data", §4). Virtual paths map under
// the root; callers have already applied path::sanitize, so nothing here can
// escape it.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "chirp/backend.h"

namespace tss::chirp {

class PosixBackend final : public Backend {
 public:
  explicit PosixBackend(std::string root);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  Result<int> open(const std::string& path, const OpenFlags& flags,
                   uint32_t mode) override;
  Result<size_t> pread(int handle, void* data, size_t size,
                       int64_t offset) override;
  Result<size_t> pwrite(int handle, const void* data, size_t size,
                        int64_t offset) override;
  Result<void> fsync(int handle) override;
  Result<void> close(int handle) override;
  Result<StatInfo> fstat(int handle) override;
  Result<int> stream_fd(int handle) override;

  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  Result<std::string> read_file(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;

  Result<std::pair<uint64_t, uint64_t>> statfs() override;

  const std::string& root() const { return root_; }

 private:
  std::string host_path(const std::string& canonical) const;
  Result<int> host_fd(int handle);

  std::string root_;
  std::mutex mutex_;
  std::map<int, int> handles_;  // backend handle -> host fd
  int next_handle_ = 1;
};

}  // namespace tss::chirp
