// IoScheduler: the client-side parallel I/O engine.
//
// The paper's DPFS bandwidth result (§5, Fig. 6) scales with the number of
// file servers, but a client that issues one blocking RPC at a time can
// never exploit that: adding servers adds idle servers. IoScheduler is the
// missing half — a bounded worker pool that runs N I/O jobs concurrently
// and hands each caller a Future carrying the job's Result<T>. The striped,
// replicated, and distributed filesystems fan their per-extent / per-replica
// / per-server operations through one of these, so a width-4 stripe read
// costs one server round trip instead of four.
//
// Design notes:
//  - Jobs are plain callables returning Result<T>; no coroutine machinery.
//    The scheduler is transport-agnostic: the same engine drives Chirp RPCs,
//    local disk I/O under test, and the bench's simulated-latency columns.
//  - Futures help while they wait: Future::get() steals queued jobs and runs
//    them on the calling thread when its own job has not finished. A nested
//    fan-out (a striped file over replicated columns, each fanning out
//    again) therefore cannot deadlock even with a single worker — blocked
//    waiters drain the queue themselves.
//  - Per-job deadlines are absolute Clock timestamps. A job whose deadline
//    passes before dispatch is failed with ETIMEDOUT without running; a
//    caller whose deadline passes mid-flight gets ETIMEDOUT from get() while
//    the job runs to harmless completion in the background.
//  - The queue is bounded; submit() beyond the bound resolves the future
//    immediately with a typed EBUSY instead of blocking, mirroring the
//    server-side admission control. Everything is observable: the
//    `client.inflight` gauge and `client.*` counters land in the same
//    obs::Registry the rest of the stack reports to.
//
// Lifetime: futures must be consumed before their scheduler is destroyed
// (every layer that owns a scheduler joins its fan-outs before returning).
// Destruction drains the queue, so every submitted job still resolves.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/result.h"

namespace tss {

namespace detail {

template <typename R>
struct ResultValue;
template <typename T>
struct ResultValue<Result<T>> {
  using type = T;
};
template <typename R>
using ResultValueT = typename ResultValue<R>::type;

template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<Result<T>> result;
  // The ETIMEDOUT verdict is counted once per job, whether it is reached by
  // the dispatcher (expired while queued) or by the waiter (expired
  // mid-flight).
  bool expiry_counted = false;
  // Set at submit() time when the queue refused the job. The job callable
  // never ran and never will — callers that pre-account per-job side effects
  // (e.g. hedge bookkeeping) must roll them back on a rejected future.
  bool rejected = false;
};

}  // namespace detail

class IoScheduler {
 public:
  struct Options {
    // Worker threads executing submitted jobs. 0 is legal: jobs then run
    // only on waiting callers' threads (fully deterministic, used in tests).
    int workers = 4;
    // Queued-but-not-started jobs beyond which submit() answers EBUSY.
    size_t max_queue = 4096;
    // client.* metrics registry. Null = the process-wide registry.
    obs::Registry* metrics = nullptr;
    // Deadline evaluation. Null = RealClock.
    Clock* clock = nullptr;
  };

  template <typename T>
  class Future {
   public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }
    bool ready() const {
      std::lock_guard<std::mutex> lock(state_->mutex);
      return state_->result.has_value();
    }

    // True iff submit() refused the job (queue full). Unlike ready(), this
    // cannot be confused with a fast completion: it is set only on the
    // rejection path, so the job callable is guaranteed never to run.
    bool rejected() const {
      std::lock_guard<std::mutex> lock(state_->mutex);
      return state_->rejected;
    }

    // Waits for the job's result, helping to run queued jobs meanwhile.
    // Honors the deadline the job was submitted with; consume once.
    Result<T> get() {
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(state_->mutex);
          if (state_->result.has_value()) {
            return std::move(*state_->result);
          }
        }
        if (deadline_ > 0 && scheduler_->clock_->now() >= deadline_) {
          std::lock_guard<std::mutex> lock(state_->mutex);
          if (state_->result.has_value()) return std::move(*state_->result);
          scheduler_->count_expiry(&state_->expiry_counted);
          return Error(ETIMEDOUT, "io deadline expired mid-flight");
        }
        if (scheduler_->run_one()) continue;  // help while waiting
        std::unique_lock<std::mutex> lock(state_->mutex);
        if (state_->result.has_value()) return std::move(*state_->result);
        state_->cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }

   private:
    friend class IoScheduler;
    Future(std::shared_ptr<detail::FutureState<T>> state,
           IoScheduler* scheduler, Nanos deadline)
        : state_(std::move(state)),
          scheduler_(scheduler),
          deadline_(deadline) {}

    std::shared_ptr<detail::FutureState<T>> state_;
    IoScheduler* scheduler_ = nullptr;
    Nanos deadline_ = 0;
  };

  IoScheduler();  // default options
  explicit IoScheduler(Options options);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Submits `fn` (a callable returning Result<T>) for execution. `deadline`
  // is an absolute clock timestamp; 0 = none.
  template <typename Fn>
  auto submit(Fn fn, Nanos deadline = 0)
      -> Future<detail::ResultValueT<std::invoke_result_t<Fn&>>> {
    using R = std::invoke_result_t<Fn&>;
    using T = detail::ResultValueT<R>;
    auto state = std::make_shared<detail::FutureState<T>>();
    auto resolve = [this, state](R value) {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->result.emplace(std::move(value));
      }
      state->cv.notify_all();
      job_done();
    };
    Job job;
    job.deadline = deadline;
    job.run = [resolve, fn = std::move(fn)]() mutable { resolve(fn()); };
    job.expire = [this, resolve, state]() {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        count_expiry(&state->expiry_counted);
      }
      resolve(Error(ETIMEDOUT, "io deadline expired before dispatch"));
    };
    if (!enqueue(std::move(job))) {
      // Queue full: typed EBUSY, never a block or a silent drop. The
      // rejected flag tells callers the callable will never run.
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->rejected = true;
        state->result.emplace(
            Error(EBUSY, "io scheduler queue full"));
      }
      m_rejected_->add();
    }
    return Future<T>(std::move(state), this, deadline);
  }

  // Pops and runs one queued job on the calling thread (deadline-checked).
  // Returns false when the queue is empty. Exposed so waiters — and tests —
  // can drive the queue without workers.
  bool run_one();

  // Queued + running jobs, from the client.inflight gauge.
  int64_t inflight() const { return m_inflight_->value(); }

  const Options& options() const { return options_; }

 private:
  struct Job {
    std::function<void()> run;
    std::function<void()> expire;
    Nanos deadline = 0;
  };

  bool enqueue(Job job);
  void job_done();
  void count_expiry(bool* counted_flag);
  void execute(Job job);
  void worker_loop();

  Options options_;
  Clock* clock_;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_deadline_expired_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;

  template <typename T>
  friend class Future;
};

// Fans `count` index-addressed jobs out on `scheduler` and returns every
// job's Result in index order. A null scheduler (or a single job) runs
// inline — the serial path and the parallel path are the same call site,
// which is what makes the serial-vs-parallel ablation a one-flag switch.
// `fn` is borrowed by reference; all jobs are joined before returning.
template <typename Fn>
auto fan_out(IoScheduler* scheduler, size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using R = std::invoke_result_t<Fn&, size_t>;
  std::vector<R> results;
  results.reserve(count);
  if (!scheduler || count <= 1) {
    for (size_t i = 0; i < count; i++) results.push_back(fn(i));
    return results;
  }
  using T = detail::ResultValueT<R>;
  std::vector<IoScheduler::Future<T>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; i++) {
    futures.push_back(scheduler->submit([&fn, i] { return fn(i); }));
  }
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

}  // namespace tss
