#include "chirp/redirect.h"

#include <algorithm>

namespace tss::chirp {

std::optional<Redirect> RedirectPolicy::consider(const std::string& path) {
  if (options_.peers.empty() || options_.hot_threshold == 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t n = ++reads_[path];
  if (n <= options_.hot_threshold) return std::nullopt;
  // Demand past the threshold enlists one peer per threshold's worth of
  // reads; round-robin across the enlisted set keeps each peer's share at
  // about one threshold until the next peer is pulled in.
  uint64_t over = n - options_.hot_threshold;
  uint64_t enlisted =
      std::min<uint64_t>(options_.peers.size(),
                         1 + (over - 1) / options_.hot_threshold);
  Redirect hint = options_.peers[(over - 1) % enlisted];
  hint.ttl_ms = options_.ttl_ms;
  issued_++;
  return hint;
}

uint64_t RedirectPolicy::issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return issued_;
}

}  // namespace tss::chirp
