// End-to-end observability over a live TCP server: drive real RPCs, then
// assert the injected registry and the `stats` RPC agree about what
// happened — op counters, per-op latency histograms with percentiles, and
// the span ring.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chirp/protocol.h"
#include "fs/cached.h"
#include "fs/local.h"
#include "fs/replicated.h"
#include "fs/scrubber.h"
#include "obs/metrics.h"
#include "chirp/test_util.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

class StatsRpcTest : public ChirpServerFixture {};

TEST_F(StatsRpcTest, ServerCountsEveryOpAndServesItsOwnSnapshot) {
  start_server();
  // The client keeps its own registry so its round-trip metrics are exact
  // and independent of the server's.
  obs::Registry client_metrics;
  Client::Options options;
  options.metrics = &client_metrics;
  auto connected = Client::connect(server_->endpoint(), options);
  ASSERT_TRUE(connected.ok()) << connected.error().to_string();
  Client client = std::move(connected).value();
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(client.authenticate(credential).ok());

  // A known mix of operations, including one that fails.
  ASSERT_TRUE(client.mkdir("/dir").ok());
  std::string payload(4096, 'x');
  ASSERT_TRUE(client.putfile("/dir/file", payload).ok());
  auto text = client.getfile("/dir/file");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), payload);
  ASSERT_TRUE(client.stat("/dir/file").ok());
  auto missing = client.stat("/dir/no-such-file");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ENOENT);

  // Server-side registry (injected by the fixture): per-op histograms count
  // exactly the ops we performed.
  EXPECT_EQ(metrics_.histogram_snapshot("chirp.server.latency.mkdir").count,
            1u);
  EXPECT_EQ(metrics_.histogram_snapshot("chirp.server.latency.putfile").count,
            1u);
  EXPECT_EQ(metrics_.histogram_snapshot("chirp.server.latency.getfile").count,
            1u);
  EXPECT_EQ(metrics_.histogram_snapshot("chirp.server.latency.stat").count,
            2u);
  EXPECT_EQ(metrics_.histogram_snapshot("chirp.server.latency.auth").count,
            1u);
  EXPECT_GE(metrics_.counter_value("chirp.server.requests"), 6u);
  EXPECT_GE(metrics_.counter_value("chirp.server.errors"), 1u);
  // putfile moved the payload in; getfile moved it back out.
  EXPECT_GE(metrics_.counter_value("chirp.server.bytes_in"), payload.size());
  EXPECT_GE(metrics_.counter_value("chirp.server.bytes_out"), payload.size());

  // The same numbers come back over the wire via the stats RPC.
  auto snapshot = client.stats();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().to_string();
  const std::string& stats_text = snapshot.value();
  EXPECT_NE(stats_text.find("counter chirp.server.requests "),
            std::string::npos)
      << stats_text;
  EXPECT_NE(stats_text.find("histogram chirp.server.latency.putfile count 1 "),
            std::string::npos)
      << stats_text;
  // Histogram lines carry the percentile fields the benches consume.
  size_t line = stats_text.find("histogram chirp.server.latency.getfile");
  ASSERT_NE(line, std::string::npos);
  std::string hline = stats_text.substr(line, stats_text.find('\n', line) - line);
  EXPECT_NE(hline.find(" p50 "), std::string::npos) << hline;
  EXPECT_NE(hline.find(" p95 "), std::string::npos) << hline;
  EXPECT_NE(hline.find(" p99 "), std::string::npos) << hline;
  // Spans made it into the ring with the authenticated subject.
  EXPECT_NE(stats_text.find("span "), std::string::npos) << stats_text;
  EXPECT_NE(stats_text.find("hostname%3Alocalhost"), std::string::npos)
      << stats_text;

  // The stats op is itself instrumented: a second snapshot sees the first.
  auto again = client.stats();
  ASSERT_TRUE(again.ok());
  EXPECT_NE(
      again.value().find("histogram chirp.server.latency.stats count 1 "),
      std::string::npos)
      << again.value();

  // Client-side round-trip metrics landed in the client's own registry.
  // Every explicit RPC above is a round-trip; the failed stat is a protocol
  // error, not a transport error, so rpc_errors stays zero.
  EXPECT_GE(client_metrics.counter_value("chirp.client.rpcs"), 7u);
  EXPECT_EQ(client_metrics.counter_value("chirp.client.rpc_errors"), 0u);
  EXPECT_GE(
      client_metrics.histogram_snapshot("chirp.client.rpc_latency").count, 7u);
}

TEST_F(StatsRpcTest, SpanRingRecordsOpSubjectBytesAndError) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/d").ok());
  auto missing = client.stat("/gone");
  ASSERT_FALSE(missing.ok());

  std::vector<obs::Span> spans = metrics_.spans().spans();
  ASSERT_GE(spans.size(), 3u);  // auth, mkdir, stat at minimum
  bool saw_mkdir = false, saw_failed_stat = false;
  for (const obs::Span& span : spans) {
    if (span.op == "mkdir") {
      saw_mkdir = true;
      EXPECT_EQ(span.subject, "hostname:localhost");
      EXPECT_EQ(span.err, 0);
      EXPECT_GE(span.duration, 0);
    }
    if (span.op == "stat" && span.err == ENOENT) saw_failed_stat = true;
  }
  EXPECT_TRUE(saw_mkdir);
  EXPECT_TRUE(saw_failed_stat);
}

TEST_F(StatsRpcTest, IntegrityCountersSurfaceInTheStatsSnapshot) {
  start_server();
  Client client = connect_client();

  // A replicated volume and its scrubber share the server's registry, so
  // the quarantine lifecycle is visible through the same stats RPC (and
  // `tss_stats URL fs.integrity fs.scrub`) operators already use.
  std::filesystem::create_directories(root_ + "/ra");
  std::filesystem::create_directories(root_ + "/rb");
  fs::LocalFs a(root_ + "/ra"), b(root_ + "/rb");
  fs::ReplicatedFs::Options options;
  options.metrics = &metrics_;
  fs::ReplicatedFs rfs({&a, &b}, options);
  ASSERT_TRUE(rfs.write_file("/doc", "replicated payload").ok());

  rfs.quarantine(1);
  EXPECT_TRUE(rfs.replica_quarantined(1));
  fs::Scrubber::Options scrub_options;
  scrub_options.metrics = &metrics_;
  fs::Scrubber scrubber(&rfs, scrub_options);
  // The copies agree, so the scrub re-verifies replica 1 and lifts the
  // quarantine (fs.integrity.repaired) while charging fs.scrub.* progress.
  auto report = scrubber.scrub_file("/doc");
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_FALSE(rfs.replica_quarantined(1));

  auto snapshot = client.stats();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().to_string();
  const std::string& text = snapshot.value();
  EXPECT_NE(text.find("counter fs.integrity.quarantine 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("counter fs.integrity.repaired 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("counter fs.integrity.mismatch 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge fs.integrity.quarantined 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("counter fs.scrub.files 1"), std::string::npos) << text;
  EXPECT_NE(text.find("counter fs.integrity.scrub_bytes"), std::string::npos)
      << text;
}

TEST_F(StatsRpcTest, CacheCounterInventorySurfacesInTheStatsSnapshot) {
  start_server();
  // The client half of the cooperative-cache inventory: connecting registers
  // fs.cache.redirect (deflections received) in the client's registry.
  obs::Registry client_metrics;
  Client::Options client_options;
  client_options.metrics = &client_metrics;
  auto connected = Client::connect(server_->endpoint(), client_options);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected).value();
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(client.authenticate(credential).ok());
  EXPECT_EQ(client_metrics.counter_value("fs.cache.redirect"), 0u);

  // A CachedFs sharing the server's registry: one scripted pass that touches
  // every counter in the fs.cache.* inventory with a known count.
  std::filesystem::create_directories(root_ + "/cache_src");
  fs::LocalFs source(root_ + "/cache_src");
  fs::CachedFs::Options options;
  options.capacity_bytes = 200;
  options.max_file_bytes = 100;
  options.metrics = &metrics_;
  fs::CachedFs cache(&source, options);

  std::string small(80, 's');
  ASSERT_TRUE(source.write_file("/a", small).ok());
  ASSERT_TRUE(source.write_file("/b", small).ok());
  ASSERT_TRUE(source.write_file("/c", small).ok());
  ASSERT_TRUE(source.write_file("/big", std::string(200, 'B')).ok());
  EXPECT_TRUE(cache.read_file("/a").ok());    // miss 1
  EXPECT_TRUE(cache.read_file("/a").ok());    // hit 1
  EXPECT_TRUE(cache.read_file("/big").ok());  // bypass 1 (oversize)
  EXPECT_TRUE(cache.read_file("/b").ok());    // miss 2
  EXPECT_TRUE(cache.read_file("/c").ok());    // miss 3, evicts LRU /a
  cache.invalidate("/b");                     // invalidate 1

  // The whole inventory comes back over the same stats RPC operators use,
  // with the exact counts of the pass above (and the server half of the
  // redirect feature registered alongside).
  auto snapshot = client.stats();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().to_string();
  const std::string& text = snapshot.value();
  EXPECT_NE(text.find("counter fs.cache.hit 1"), std::string::npos) << text;
  EXPECT_NE(text.find("counter fs.cache.miss 3"), std::string::npos) << text;
  EXPECT_NE(text.find("counter fs.cache.evict 1"), std::string::npos) << text;
  EXPECT_NE(text.find("counter fs.cache.invalidate 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("counter fs.cache.bypass 1"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge fs.cache.bytes 80"), std::string::npos) << text;
  EXPECT_NE(text.find("counter chirp.server.redirects 0"), std::string::npos)
      << text;
}

TEST_F(StatsRpcTest, IdleReapAndActiveSessionsAreObservable) {
  // A tiny idle timeout: the session should be reaped, logged, and counted
  // rather than silently dropped.
  ServerOptions options;
  options.owner = "unix:testowner";
  options.root_acl = acl::Acl::parse(root_acl_text_).value();
  options.idle_timeout = 50 * kMillisecond;
  options.metrics = &metrics_;
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  server_ = std::make_unique<Server>(
      options, std::make_unique<PosixBackend>(root_), std::move(auth));
  ASSERT_TRUE(server_->start().ok());

  Client client = connect_client();
  EXPECT_EQ(metrics_.gauge("chirp.server.active_sessions")->value(), 1);
  // Go idle past the timeout; the server reaps us.
  for (int i = 0; i < 100; i++) {
    if (metrics_.counter_value("chirp.server.idle_reaped") > 0) break;
    RealClock::instance().sleep_for(10 * kMillisecond);
  }
  EXPECT_EQ(metrics_.counter_value("chirp.server.idle_reaped"), 1u);
  for (int i = 0; i < 100; i++) {
    if (metrics_.gauge("chirp.server.active_sessions")->value() == 0) break;
    RealClock::instance().sleep_for(10 * kMillisecond);
  }
  EXPECT_EQ(metrics_.gauge("chirp.server.active_sessions")->value(), 0);
}

}  // namespace
}  // namespace tss::chirp
