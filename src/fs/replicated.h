// ReplicatedFs: transparent N-way replication — one of the §10 future-work
// abstractions ("one may imagine filesystems that transparently stripe,
// replicate, and version data"), built the way the paper prescribes: as
// just another recursive abstraction over the FileSystem interface.
//
// Semantics: every mutation is broadcast to all replicas; reads are served
// by the first replica that answers (failover order = construction order).
// A mutation that fails on some replicas but succeeds on at least one
// reports success and leaves the failed replicas *diverged*; repair() makes
// replicas converge again by copying from the first reachable one — the
// same repair shape as the GEMS replicator, at filesystem granularity.
//
// Failure hardening: each replica carries a health record. A replica that
// fails `failure_threshold` consecutive operations trips its circuit
// breaker: it is skipped for reads (no timeout paid on every access to a
// dead server) and skipped-but-marked-diverged for writes, until a probe()
// or repair() against it succeeds. Divergence is a separate, stickier bit:
// it records that the replica missed a mutation and is cleared only by
// repair() — a reachable replica with stale data must not serve reads.
//
// Integrity hardening: an EBADMSG from a replica is a *typed* integrity
// error — the replica answered, but with bytes that failed checksum
// verification (see chirp::Client). It does not count toward the breaker
// (the replica is reachable); instead the replica is *quarantined*: excluded
// from reads and from hedged races until repair() verifies or rewrites its
// copy. The fs::Scrubber drives that lifecycle in the background; see
// docs/RECOVERY.md.
//
// This is deliberately the "simplest available solution" (§1): no quorums,
// no version vectors. Trust and placement decisions stay with the user.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "fs/filesystem.h"
#include "obs/metrics.h"
#include "par/executor.h"

namespace tss::fs {

class ReplicatedFs final : public FileSystem {
 public:
  struct Options {
    // Consecutive failures before a replica's circuit breaker opens.
    int failure_threshold = 3;
    // Breaker/divergence/repair transition counters. Null = the process-wide
    // registry; tests inject their own to assert exact transition counts.
    obs::Registry* metrics = nullptr;
    // Fans replica mutations (and hedged reads) out concurrently. Borrowed,
    // may be null = serial. Health accounting happens in replica order after
    // the fan-out joins, so breaker and divergence transitions are counted
    // exactly as the serial path counts them.
    IoScheduler* scheduler = nullptr;
    // With a scheduler: pread races every clean replica and returns the
    // first success, letting the losers finish in the background. Opt-in —
    // it spends replica bandwidth to cut tail latency, and the winning
    // replica is whichever answered first rather than the failover order.
    bool hedged_reads = false;
  };

  // Replicas are borrowed and must outlive the ReplicatedFs. At least one.
  ReplicatedFs(std::vector<FileSystem*> replicas, Options options);
  explicit ReplicatedFs(std::vector<FileSystem*> replicas)
      : ReplicatedFs(std::move(replicas), Options{}) {}

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  // Re-synchronizes `path` (a file) on all replicas from the first healthy
  // replica that holds it. Returns the number of replicas repaired. A
  // successfully repaired replica has its breaker closed and its diverged
  // mark cleared.
  Result<int> repair(const std::string& path);

  // Actively checks replica `i` (a stat of "/"). Success closes its
  // circuit breaker; the diverged mark, if any, stays until repair().
  Result<void> probe(size_t i);

  size_t replica_count() const { return replicas_.size(); }
  // Direct access to replica `i` — the scrubber (and repair tooling) reads
  // replicas individually to compare their bytes.
  FileSystem* replica(size_t i) const { return replicas_[i]; }
  // Breaker closed: the replica participates in reads and writes.
  bool replica_available(size_t i) const;
  // The replica missed at least one mutation since the last repair().
  bool replica_diverged(size_t i) const;
  // The replica served bytes that failed integrity verification and is
  // excluded from reads until repair() clears it.
  bool replica_quarantined(size_t i) const;
  // Marks replica `i` integrity-suspect. Idempotent; also called internally
  // on EBADMSG, and by the scrubber/operators on digest disagreement.
  void quarantine(size_t i);

 private:
  friend class ReplicatedFile;

  struct Health {
    int consecutive_failures = 0;
    bool diverged = false;
    bool quarantined = false;
  };

  bool available_locked(size_t i) const {
    return health_[i].consecutive_failures < options_.failure_threshold;
  }
  // Reads prefer clean replicas (available, not diverged); broken ones are
  // kept as a last resort so a fully-failed set still degrades to an error
  // from the real operation rather than a synthetic one. `clean_count`, if
  // given, receives the number of leading clean entries.
  std::vector<size_t> read_order(size_t* clean_count = nullptr) const;
  // Replicas whose breaker is closed; the rest land in `skipped` (unless
  // every breaker is open, in which case all replicas become targets).
  std::vector<size_t> write_targets(std::vector<size_t>* skipped);
  void note_success(size_t i);
  // Counts availability-class failures toward the breaker; semantic
  // refusals (ENOENT, EACCES, ...) do not open it. EBADMSG routes to
  // quarantine() instead.
  void note_failure(size_t i, int code);
  void mark_diverged(size_t i);
  // Lifts the quarantine after repair() verified or rewrote the copy.
  void unquarantine(size_t i);

  template <typename Fn>
  Result<void> broadcast(Fn&& fn);
  template <typename Fn>
  auto first_success(Fn&& fn) -> decltype(fn(std::declval<FileSystem&>()));

  std::vector<FileSystem*> replicas_;
  Options options_;
  mutable std::mutex mutex_;
  std::vector<Health> health_;
  // Transition counters (see Options::metrics): breaker opened/closed,
  // replicas newly marked diverged, replicas repaired.
  obs::Counter* m_breaker_opens_ = nullptr;
  obs::Counter* m_breaker_closes_ = nullptr;
  obs::Counter* m_diverged_ = nullptr;
  obs::Counter* m_repaired_ = nullptr;
  // Integrity counters (see docs/OBSERVABILITY.md): verification failures
  // observed, quarantine transitions, quarantined replicas repaired, and the
  // currently-quarantined gauge.
  obs::Counter* m_integrity_mismatch_ = nullptr;
  obs::Counter* m_quarantine_ = nullptr;
  obs::Counter* m_integrity_repaired_ = nullptr;
  obs::Gauge* g_quarantined_ = nullptr;
};

}  // namespace tss::fs
