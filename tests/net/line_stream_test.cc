#include "net/line_stream.h"

#include <gtest/gtest.h>

#include <thread>

namespace tss::net {
namespace {

// Builds a connected socket pair over loopback.
struct Pair {
  TcpSocket a, b;
};

Pair make_pair() {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok());
  Endpoint ep{"127.0.0.1", listener.value().port()};
  auto client = TcpSocket::connect(ep, 5 * kSecond);
  EXPECT_TRUE(client.ok());
  auto server = listener.value().accept(5 * kSecond);
  EXPECT_TRUE(server.ok());
  return Pair{std::move(client).value(), std::move(server).value()};
}

TEST(LineStream, LineRoundTrip) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  ASSERT_TRUE(a.send_line("open /x rw 0644").ok());
  auto line = b.read_line();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "open /x rw 0644");
}

TEST(LineStream, MultipleLinesInOneSegment) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  a.write_line("one");
  a.write_line("two");
  a.write_line("three");
  ASSERT_TRUE(a.flush().ok());
  EXPECT_EQ(b.read_line().value(), "one");
  EXPECT_EQ(b.read_line().value(), "two");
  EXPECT_EQ(b.read_line().value(), "three");
}

TEST(LineStream, LineThenBlobInOneFlush) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  std::string payload(100000, 'z');
  a.write_line("pwrite 3 100000 0");
  a.write_blob(payload.data(), payload.size());
  ASSERT_TRUE(a.flush().ok());

  EXPECT_EQ(b.read_line().value(), "pwrite 3 100000 0");
  std::string got(payload.size(), '\0');
  ASSERT_TRUE(b.read_blob(got.data(), got.size()).ok());
  EXPECT_EQ(got, payload);
}

TEST(LineStream, BlobThenLine) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  a.write_line("ok 4");
  a.write_blob("data", 4);
  a.write_line("next");
  ASSERT_TRUE(a.flush().ok());

  EXPECT_EQ(b.read_line().value(), "ok 4");
  char buf[4];
  ASSERT_TRUE(b.read_blob(buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "data");
  EXPECT_EQ(b.read_line().value(), "next");
}

TEST(LineStream, StripsCarriageReturn) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  a.write_blob("hello\r\n", 7);
  ASSERT_TRUE(a.flush().ok());
  EXPECT_EQ(b.read_line().value(), "hello");
}

TEST(LineStream, RejectsOversizedLine) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  std::string big(5000, 'x');
  a.write_line(big);
  ASSERT_TRUE(a.flush().ok());
  auto line = b.read_line(/*max_len=*/1024);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.error().code, EMSGSIZE);
}

TEST(LineStream, CleanEofReportsEpipe) {
  Pair p = make_pair();
  LineStream b(std::move(p.b));
  p.a.close();
  auto line = b.read_line();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.error().code, EPIPE);
}

TEST(LineStream, EofMidLineReportsReset) {
  Pair p = make_pair();
  LineStream b(std::move(p.b));
  ASSERT_TRUE(p.a.write_all("partial-line-without-newline", 28, kSecond).ok());
  p.a.close();
  auto line = b.read_line();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.error().code, ECONNRESET);
}

TEST(LineStream, LargeBlobAcrossBufferBoundaries) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  std::string payload;
  payload.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); i++) {
    payload.push_back(static_cast<char>(i * 31));
  }
  std::thread writer([&] {
    a.write_line("blob");
    a.write_blob(payload.data(), payload.size());
    ASSERT_TRUE(a.flush().ok());
  });
  EXPECT_EQ(b.read_line().value(), "blob");
  std::string got(payload.size(), '\0');
  ASSERT_TRUE(b.read_blob(got.data(), got.size()).ok());
  writer.join();
  EXPECT_EQ(got, payload);
}

// --- Transport fault injection ----------------------------------------------

TEST(LineStream, FaultHookInjectsErrorWithoutTouchingSocket) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  int consulted = 0;
  b.set_fault_hook([&](std::string_view point) {
    consulted++;
    EXPECT_EQ(point, "read");
    return TransportFault::error(ETIMEDOUT);
  });
  auto line = b.read_line();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.error().code, ETIMEDOUT);
  EXPECT_EQ(consulted, 1);
  // The socket itself is untouched: clearing the hook restores service.
  b.set_fault_hook(nullptr);
  ASSERT_TRUE(a.send_line("still here").ok());
  EXPECT_EQ(b.read_line().value(), "still here");
}

TEST(LineStream, FaultHookSeversConnection) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  a.set_fault_hook(
      [](std::string_view) { return TransportFault::sever(); });
  auto rc = a.send_line("doomed");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ECONNRESET);
  EXPECT_FALSE(a.valid());
  // The peer observes a clean EOF — exactly what a real mid-RPC crash of
  // the other end looks like.
  auto line = b.read_line();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.error().code, EPIPE);
}

TEST(LineStream, FaultHookTruncatesFrame) {
  Pair p = make_pair();
  LineStream a(std::move(p.a)), b(std::move(p.b));
  std::string payload(1000, 'q');
  a.write_line("putfile /f 0644 1000");
  a.write_blob(payload.data(), payload.size());
  bool armed = false;
  a.set_fault_hook([&](std::string_view point) {
    if (point == "flush" && !armed) {
      armed = true;
      return TransportFault::truncate();
    }
    return TransportFault::none();
  });
  auto rc = a.flush();
  ASSERT_FALSE(rc.ok());
  EXPECT_FALSE(a.valid());
  // The peer gets the header but a short body: EOF mid-blob is a typed
  // ECONNRESET, never a hang.
  auto line = b.read_line();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "putfile /f 0644 1000");
  std::string got(payload.size(), '\0');
  auto blob = b.read_blob(got.data(), got.size());
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.error().code, ECONNRESET);
}

}  // namespace
}  // namespace tss::net
