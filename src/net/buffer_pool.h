// Reusable 512-byte-aligned buffer pool for blob I/O.
//
// The bulk data path (streamed getfile/putfile chunks, pread/pwrite
// payloads) used to allocate a fresh std::string per chunk; under a sharded
// reactor pushing hundreds of thousands of RPCs a second, that allocator
// traffic is measurable. BufferPool hands out fixed-size buffers aligned to
// 512 bytes (the TrustedSSD tssd_malloc idiom — alignment keeps the buffers
// usable for O_DIRECT-style backends later) and recycles them through a
// bounded freelist. PoolBuffer is the RAII handle: movable, returns its
// buffer on destruction, and can be moved into a connection's output queue
// so a streamed chunk is read once and written to the socket with no
// intermediate copy.
//
// Thread-safe; the freelist mutex is uncontended in practice (acquire and
// release are far apart on the request path). A pool must outlive every
// PoolBuffer it issued; the process-wide global() pool trivially satisfies
// this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tss::net {

class BufferPool;

// Movable RAII handle to one pooled buffer. Default-constructed handles are
// empty (valid() == false); moved-from handles become empty.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  ~PoolBuffer();
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;
  PoolBuffer(PoolBuffer&& other) noexcept
      : pool_(other.pool_), p_(other.p_), cap_(other.cap_) {
    other.pool_ = nullptr;
    other.p_ = nullptr;
    other.cap_ = 0;
  }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept;

  char* data() const { return p_; }
  size_t capacity() const { return cap_; }
  bool valid() const { return p_ != nullptr; }
  // Returns the buffer to its pool immediately (destructor equivalent).
  void reset();

 private:
  friend class BufferPool;
  PoolBuffer(BufferPool* pool, char* p, size_t cap)
      : pool_(pool), p_(p), cap_(cap) {}

  BufferPool* pool_ = nullptr;
  char* p_ = nullptr;
  size_t cap_ = 0;
};

class BufferPool {
 public:
  static constexpr size_t kAlignment = 512;

  // `buffer_size` is rounded up to the alignment. At most `max_free` idle
  // buffers are retained; beyond that, released buffers are freed.
  explicit BufferPool(size_t buffer_size = 256 * 1024, size_t max_free = 16);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Never fails for sane sizes; on allocation failure the returned handle is
  // empty (valid() == false) and the caller must fall back.
  PoolBuffer acquire();

  size_t buffer_size() const { return buffer_size_; }
  // Freelist hit/miss counts since construction (miss = fresh allocation).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  // Process-wide pool for stream-chunk-sized buffers (256 KB).
  static BufferPool& global();

 private:
  friend class PoolBuffer;
  void release(char* p);

  const size_t buffer_size_;
  const size_t max_free_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::mutex mutex_;
  std::vector<char*> free_;
};

}  // namespace tss::net
