#include "workload/sp5.h"

#include <cstring>

#include "util/rand.h"

namespace tss::workload {

namespace {
std::string deterministic_bytes(size_t size, uint64_t seed) {
  std::string out;
  out.resize(size);
  Rng rng(seed);
  size_t i = 0;
  while (i + 8 <= size) {
    uint64_t word = rng.next();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  for (; i < size; i++) out[i] = static_cast<char>(rng.next());
  return out;
}
}  // namespace

Result<void> sp5_install(fs::FileSystem& fs, const Sp5Config& config,
                         uint64_t seed) {
  TSS_RETURN_IF_ERROR(fs::mkdir_recursive(fs, config.root + "/scripts"));
  TSS_RETURN_IF_ERROR(fs::mkdir_recursive(fs, config.root + "/lib"));
  TSS_RETURN_IF_ERROR(fs::mkdir_recursive(fs, config.root + "/data"));
  for (int i = 0; i < config.script_count; i++) {
    TSS_RETURN_IF_ERROR(fs.write_file(
        config.script_path(i),
        deterministic_bytes(config.script_bytes, seed * 1000 + (uint64_t)i)));
  }
  for (int i = 0; i < config.library_count; i++) {
    TSS_RETURN_IF_ERROR(fs.write_file(
        config.library_path(i),
        deterministic_bytes(config.library_bytes,
                            seed * 2000 + (uint64_t)i)));
  }
  TSS_RETURN_IF_ERROR(fs.write_file(
      config.input_path(), deterministic_bytes(config.input_bytes, seed)));
  TSS_RETURN_IF_ERROR(fs.write_file(config.output_path(), ""));
  return Result<void>::success();
}

Result<uint64_t> sp5_init(fs::FileSystem& fs, const Sp5Config& config) {
  uint64_t total = 0;
  // The startup sequence of a script-driven application: every component is
  // opened and read in full, one at a time.
  for (int i = 0; i < config.script_count; i++) {
    TSS_ASSIGN_OR_RETURN(std::string data, fs.read_file(config.script_path(i)));
    total += data.size();
  }
  for (int i = 0; i < config.library_count; i++) {
    TSS_ASSIGN_OR_RETURN(std::string data,
                         fs.read_file(config.library_path(i)));
    total += data.size();
  }
  return total;
}

Result<void> sp5_event(fs::FileSystem& fs, const Sp5Config& config,
                       int event_index) {
  // Read this event's input slice (wrapping around the dataset).
  TSS_ASSIGN_OR_RETURN(
      auto input, fs.open(config.input_path(),
                          fs::OpenFlags::parse("r").value()));
  uint64_t slice = config.event_input_bytes;
  uint64_t offset =
      (static_cast<uint64_t>(event_index) * slice) %
      std::max<uint64_t>(1, config.input_bytes - slice + 1);
  std::string buffer(slice, '\0');
  size_t got = 0;
  while (got < slice) {
    TSS_ASSIGN_OR_RETURN(
        size_t n, input->pread(buffer.data() + got, slice - got,
                               static_cast<int64_t>(offset + got)));
    if (n == 0) break;
    got += n;
  }
  TSS_RETURN_IF_ERROR(input->close());

  // Append the event's output record.
  TSS_ASSIGN_OR_RETURN(
      auto output, fs.open(config.output_path(),
                           fs::OpenFlags::parse("wa").value()));
  TSS_ASSIGN_OR_RETURN(fs::StatInfo info, output->fstat());
  std::string record = deterministic_bytes(config.event_output_bytes,
                                           0xE0E0 + (uint64_t)event_index);
  size_t written = 0;
  while (written < record.size()) {
    TSS_ASSIGN_OR_RETURN(
        size_t n,
        output->pwrite(record.data() + written, record.size() - written,
                       static_cast<int64_t>(info.size + written)));
    if (n == 0) return Error(EIO, "short event output write");
    written += n;
  }
  return output->close();
}

}  // namespace tss::workload
