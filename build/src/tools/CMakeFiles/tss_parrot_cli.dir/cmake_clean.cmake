file(REMOVE_RECURSE
  "CMakeFiles/tss_parrot_cli.dir/parrot_main.cc.o"
  "CMakeFiles/tss_parrot_cli.dir/parrot_main.cc.o.d"
  "tss_parrot"
  "tss_parrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_parrot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
