file(REMOVE_RECURSE
  "CMakeFiles/tss_auth.dir/auth.cc.o"
  "CMakeFiles/tss_auth.dir/auth.cc.o.d"
  "CMakeFiles/tss_auth.dir/gsi.cc.o"
  "CMakeFiles/tss_auth.dir/gsi.cc.o.d"
  "CMakeFiles/tss_auth.dir/hostname.cc.o"
  "CMakeFiles/tss_auth.dir/hostname.cc.o.d"
  "CMakeFiles/tss_auth.dir/kerberos.cc.o"
  "CMakeFiles/tss_auth.dir/kerberos.cc.o.d"
  "CMakeFiles/tss_auth.dir/unix.cc.o"
  "CMakeFiles/tss_auth.dir/unix.cc.o.d"
  "libtss_auth.a"
  "libtss_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
