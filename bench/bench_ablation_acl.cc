// Ablation — the CPU cost of the virtual-user-space ACL machinery
// (google-benchmark microbenchmarks).
//
// Every Chirp request pays an ACL evaluation (and possibly an ancestor
// walk); this bench shows that cost is nanoseconds-to-microseconds —
// invisible under the network latencies of Figure 4, which is why the paper
// can afford per-directory ACLs with wildcard subjects on every operation.
#include <benchmark/benchmark.h>

#include "acl/acl.h"
#include "chirp/protocol.h"
#include "util/path.h"
#include "util/strings.h"

namespace {

tss::acl::Acl make_acl(int entries) {
  tss::acl::Acl acl;
  for (int i = 0; i < entries; i++) {
    acl.set("hostname:*.dept" + std::to_string(i) + ".nd.edu",
            tss::acl::kRead | tss::acl::kWrite | tss::acl::kList,
            tss::acl::kNoRights);
  }
  acl.set("globus:/O=Notre_Dame/*", tss::acl::kRead | tss::acl::kList,
          tss::acl::kNoRights);
  return acl;
}

void BM_AclCheckHit(benchmark::State& state) {
  tss::acl::Acl acl = make_acl(static_cast<int>(state.range(0)));
  std::string subject = "globus:/O=Notre_Dame/CN=Douglas_Thain";
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.check(subject, tss::acl::kRead));
  }
}
BENCHMARK(BM_AclCheckHit)->Arg(1)->Arg(8)->Arg(64);

void BM_AclCheckMiss(benchmark::State& state) {
  tss::acl::Acl acl = make_acl(static_cast<int>(state.range(0)));
  std::string subject = "kerberos:stranger@ELSEWHERE.EDU";
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.check(subject, tss::acl::kRead));
  }
}
BENCHMARK(BM_AclCheckMiss)->Arg(1)->Arg(8)->Arg(64);

void BM_AclParse(benchmark::State& state) {
  std::string text = make_acl(static_cast<int>(state.range(0))).serialize();
  for (auto _ : state) {
    auto acl = tss::acl::Acl::parse(text);
    benchmark::DoNotOptimize(acl);
  }
}
BENCHMARK(BM_AclParse)->Arg(1)->Arg(8)->Arg(64);

void BM_WildcardMatch(benchmark::State& state) {
  std::string pattern = "globus:/O=Notre_Dame/*";
  std::string subject = "globus:/O=Notre_Dame/CN=Somebody_With_A_Long_Name";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tss::wildcard_match(pattern, subject));
  }
}
BENCHMARK(BM_WildcardMatch);

void BM_PathSanitize(benchmark::State& state) {
  std::string raw = "/a/b/../c//./d/e/../../f/data.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tss::path::sanitize(raw));
  }
}
BENCHMARK(BM_PathSanitize);

void BM_RequestEncodeParse(benchmark::State& state) {
  tss::chirp::Request request;
  request.op = tss::chirp::Op::kOpen;
  request.path = "/some/dir with space/file.dat";
  request.flags = tss::chirp::OpenFlags::parse("rwc").value();
  for (auto _ : state) {
    std::string line = tss::chirp::encode_request(request);
    auto parsed = tss::chirp::parse_request_line(line);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RequestEncodeParse);

}  // namespace

BENCHMARK_MAIN();
