
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fs/chaos_test.cc" "tests/CMakeFiles/fs_chaos_test.dir/fs/chaos_test.cc.o" "gcc" "tests/CMakeFiles/fs_chaos_test.dir/fs/chaos_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfs/CMakeFiles/tss_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/adapter/CMakeFiles/tss_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tss_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/parrot/CMakeFiles/tss_parrot.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gems/CMakeFiles/tss_gems.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tss_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tss_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/tss_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/tss_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/tss_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
