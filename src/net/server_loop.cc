#include "net/server_loop.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/logging.h"
#include "util/rand.h"

namespace tss::net {

namespace {

// Session wrapper that keeps the loop's live-connection count honest on the
// reactor engine: decremented exactly once, on on_close — or on destruction
// if the connection was never adopted (shutdown race).
class CountedSession final : public ReactorSession {
 public:
  CountedSession(std::shared_ptr<ReactorSession> inner,
                 std::atomic<size_t>* active)
      : inner_(std::move(inner)), active_(active) {}
  ~CountedSession() override {
    if (!closed_) active_->fetch_sub(1);
  }

  void on_start(Conn& c) override { inner_->on_start(c); }
  bool on_input(Conn& c) override { return inner_->on_input(c); }
  bool on_output_space(Conn& c) override { return inner_->on_output_space(c); }
  bool on_timeout(Conn& c) override { return inner_->on_timeout(c); }
  void on_close(Conn& c) override {
    inner_->on_close(c);
    closed_ = true;
    active_->fetch_sub(1);
  }

 private:
  std::shared_ptr<ReactorSession> inner_;
  std::atomic<size_t>* active_;
  bool closed_ = false;
};

}  // namespace

Mode default_mode() {
  if (const char* env = std::getenv("TSS_NET_MODE")) {
    std::string_view v(env);
    if (v == "thread") return Mode::kThreadPerConnection;
    if (v == "reactor") return Mode::kReactor;
    TSS_WARN("net") << "unknown TSS_NET_MODE '" << v << "', using reactor";
  }
  return Mode::kReactor;
}

Result<void> ServerLoop::start_common(const std::string& host, uint16_t port,
                                      Limits limits) {
  limits_ = std::move(limits);
  obs::Registry& reg =
      limits_.metrics ? *limits_.metrics : obs::Registry::global();
  accept_error_counter_ = reg.counter("net.accept.error");
  int want = std::max(1, limits_.acceptors);
  listeners_.clear();
  // The first listener sets SO_REUSEPORT only when sharding is requested:
  // later listeners can only join a port whose first bind opted in.
  auto first = TcpListener::listen(host, port, /*backlog=*/64,
                                   /*reuse_port=*/want > 1);
  if (!first.ok() && want > 1) {
    // Platform without SO_REUSEPORT (or it is refused): single listener.
    TSS_WARN("net") << "reuse-port listen failed ("
                    << first.error().to_string()
                    << "), falling back to one acceptor";
    want = 1;
    first = TcpListener::listen(host, port);
  }
  if (!first.ok()) return std::move(first).take_error();
  port_ = first.value().port();
  listeners_.push_back(std::move(first).value());
  for (int i = 1; i < want; ++i) {
    auto next = TcpListener::listen(host, port_, /*backlog=*/64,
                                    /*reuse_port=*/true);
    if (!next.ok()) {
      TSS_WARN("net") << "acceptor " << i << " listen failed ("
                      << next.error().to_string()
                      << "), continuing with " << listeners_.size();
      break;
    }
    listeners_.push_back(std::move(next).value());
  }
  return Result<void>::success();
}

void ServerLoop::start_acceptors() {
  running_.store(true);
  accept_threads_.reserve(listeners_.size());
  for (size_t i = 0; i < listeners_.size(); ++i) {
    accept_threads_.emplace_back([this, i] { accept_loop(i); });
  }
}

Result<void> ServerLoop::start(const std::string& host, uint16_t port,
                               Handler handler, Limits limits) {
  TSS_RETURN_IF_ERROR(start_common(host, port, std::move(limits)));
  handler_ = std::move(handler);
  mode_ = Mode::kThreadPerConnection;  // raw handlers block; no reactor
  start_acceptors();
  return Result<void>::success();
}

Result<void> ServerLoop::start(const std::string& host, uint16_t port,
                               SessionFactory factory, Limits limits) {
  TSS_RETURN_IF_ERROR(start_common(host, port, std::move(limits)));
  factory_ = std::move(factory);
  mode_ = limits_.mode == Mode::kAuto ? default_mode() : limits_.mode;
  if (mode_ == Mode::kReactor) {
    EventLoop::Options opts;
    opts.workers = limits_.reactor_workers;
    opts.force_poll = limits_.force_poll;
    opts.metrics = limits_.metrics;
    loop_ = std::make_unique<EventLoop>(opts);
    auto rc = loop_->start();
    if (!rc.ok()) {
      loop_.reset();
      listeners_.clear();
      return rc;
    }
  }
  start_acceptors();
  return Result<void>::success();
}

namespace {

// Accept errors that mean the listener itself is unusable; anything else —
// fd exhaustion (EMFILE/ENFILE), memory pressure (ENOMEM/ENOBUFS), per-conn
// network errors — is transient: the condition clears when connections close
// or pressure subsides, so the acceptor must survive it. Availability bug in
// the seed: one EMFILE burst killed the accept thread for good and the
// server stopped admitting clients forever.
bool fatal_accept_error(int code) {
  return code == EBADF || code == EINVAL || code == ENOTSOCK ||
         code == EOPNOTSUPP;
}

}  // namespace

void ServerLoop::accept_loop(size_t idx) {
  TcpListener& listener = listeners_[idx];
  // Per-acceptor jitter stream so sharded acceptors don't retry in lockstep.
  Rng rng(0x9e3779b97f4a7c15ULL ^ idx);
  Nanos backoff = 0;
  constexpr Nanos kBackoffBase = 2 * kMillisecond;
  constexpr Nanos kBackoffCap = 100 * kMillisecond;
  while (running_.load()) {
    auto sock = listener.accept(200 * kMillisecond);
    if (!sock.ok()) {
      int code = sock.error().code;
      if (code == ETIMEDOUT) continue;
      if (!running_.load()) break;
      if (fatal_accept_error(code)) {
        TSS_WARN("net") << "acceptor " << idx
                        << " fatal: " << sock.error().to_string();
        break;
      }
      // Transient: count it, back off with jitter (the retry must not spin
      // while the process is out of fds), and keep accepting.
      accept_errors_.fetch_add(1);
      accept_error_counter_->add();
      TSS_WARN("net") << "accept: " << sock.error().to_string()
                      << " (retrying)";
      backoff = backoff == 0 ? kBackoffBase
                             : std::min(backoff * 2, kBackoffCap);
      Nanos delay = static_cast<Nanos>(
          static_cast<double>(backoff) * (0.75 + 0.5 * rng.uniform()));
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      continue;
    }
    backoff = 0;
    dispatch(std::move(sock).value());
  }
}

void ServerLoop::dispatch(TcpSocket sock) {
  if (limits_.max_connections > 0 &&
      active_.load() >= limits_.max_connections) {
    // Over the cap: tell the client why (best effort), then close. A
    // refusal must be visible — to the client as a typed error instead of
    // a bare EOF, and to the operator in the log and the metrics. The
    // notice is one non-blocking send: a refused client that never reads
    // must not be able to stall the acceptor (the socket from accept4 is
    // already non-blocking; a full buffer just drops the notice).
    rejected_.fetch_add(1);
    if (limits_.rejected_counter) limits_.rejected_counter->add();
    TSS_WARN("net") << "connection cap (" << limits_.max_connections
                    << ") reached, refusing client";
    if (!limits_.reject_notice.empty()) {
      (void)::send(sock.raw_fd(), limits_.reject_notice.data(),
                   limits_.reject_notice.size(),
                   MSG_DONTWAIT | MSG_NOSIGNAL);
    }
    sock.close();
    return;
  }
  accepted_.fetch_add(1);
  active_.fetch_add(1);
  if (mode_ == Mode::kReactor) {
    auto session = std::make_shared<CountedSession>(factory_(), &active_);
    auto rc = loop_->adopt(std::move(sock), std::move(session));
    if (!rc.ok()) {
      // The loop refused the connection (stopping, or a bad fd). The
      // CountedSession destructor restores active_; account the drop where
      // operators look for refused clients instead of losing it to a
      // debug-only log line.
      rejected_.fetch_add(1);
      if (limits_.rejected_counter) limits_.rejected_counter->add();
      if (running_.load()) {
        TSS_WARN("net") << "adopt failed, dropping client: "
                        << rc.error().to_string();
      }
    }
    return;
  }
  spawn_thread(std::move(sock));
}

void ServerLoop::spawn_thread(TcpSocket sock) {
  uint64_t id;
  std::lock_guard<std::mutex> lock(mutex_);
  id = next_conn_id_++;
  Connection& conn = conns_[id];
  // dup the fd so stop() can shutdown() a blocked handler without racing
  // fd reuse: we own the dup until we close it ourselves.
  conn.dup_fd = ::dup(sock.raw_fd());
  // The mutex is held until the thread object lands in the entry, so the
  // handler's finish_connection() (which needs the same mutex) cannot
  // observe a half-built entry however fast the connection completes.
  conn.thread = std::thread([this, id, s = std::move(sock)]() mutable {
    if (factory_) {
      drive_session_blocking(std::move(s), factory_(), limits_.metrics);
    } else {
      handler_(std::move(s));
    }
    finish_connection(id);
  });
}

void ServerLoop::finish_connection(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.fetch_sub(1);
  auto it = conns_.find(id);
  // Entry gone: stop() owns the thread object now and will join us.
  if (it == conns_.end()) return;
  if (it->second.dup_fd >= 0) ::close(it->second.dup_fd);
  // A thread cannot join itself, so completion *is* the reap: detach and
  // drop the entry. Nothing after this point touches the ServerLoop, which
  // is what makes the detach safe against a racing stop()/destruction —
  // stop() only returns once every remaining *entry* is joined, and this
  // entry is gone before the lock is released.
  it->second.thread.detach();
  conns_.erase(it);
}

void ServerLoop::stop() {
  if (!running_.exchange(false)) return;
  // Wake each acceptor with shutdown() rather than close(): close() would
  // mutate the listener Fd while the accept thread is reading it (a data
  // race, and the fd number could be reused under the acceptor's feet).
  // shutdown() only reads the descriptor; accept fails immediately with
  // EINVAL and the loop exits. The 200ms accept timeout (and the ≤150ms
  // backoff sleep cap) is the fallback on platforms where shutdown on a
  // listener is a no-op.
  for (auto& l : listeners_) {
    if (l.valid()) ::shutdown(l.raw_fd(), SHUT_RDWR);
  }
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  listeners_.clear();
  if (loop_) {
    loop_->stop();
    loop_.reset();
  }
  std::unordered_map<uint64_t, Connection> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
  }
  for (auto& [id, c] : conns) {
    if (c.dup_fd >= 0) ::shutdown(c.dup_fd, SHUT_RDWR);
  }
  for (auto& [id, c] : conns) {
    if (c.thread.joinable()) c.thread.join();
    if (c.dup_fd >= 0) ::close(c.dup_fd);
  }
}

}  // namespace tss::net
