file(REMOVE_RECURSE
  "CMakeFiles/tss_adapter.dir/adapter.cc.o"
  "CMakeFiles/tss_adapter.dir/adapter.cc.o.d"
  "CMakeFiles/tss_adapter.dir/dsfs_mount.cc.o"
  "CMakeFiles/tss_adapter.dir/dsfs_mount.cc.o.d"
  "CMakeFiles/tss_adapter.dir/mountlist.cc.o"
  "CMakeFiles/tss_adapter.dir/mountlist.cc.o.d"
  "CMakeFiles/tss_adapter.dir/pool.cc.o"
  "CMakeFiles/tss_adapter.dir/pool.cc.o.d"
  "libtss_adapter.a"
  "libtss_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
