#include "auth/kerberos.h"

#include "util/checksum.h"
#include "util/strings.h"

namespace tss::auth {

namespace {
std::string ticket_payload(const std::string& client,
                           const std::string& service, int64_t expires) {
  return client + "|" + service + "|" + std::to_string(expires);
}
}  // namespace

void Kdc::add_principal(const std::string& principal, const std::string& key) {
  principals_[principal] = key;
}

void Kdc::add_service(const std::string& service, const std::string& key) {
  services_[service] = key;
}

Result<std::string> Kdc::issue_ticket(const std::string& principal,
                                      const std::string& user_key,
                                      const std::string& service,
                                      int64_t expires_unix) const {
  auto pit = principals_.find(principal);
  if (pit == principals_.end() || pit->second != user_key) {
    return Error(EACCES, "kdc: bad principal or key");
  }
  auto sit = services_.find(service);
  if (sit == services_.end()) {
    return Error(EACCES, "kdc: unknown service: " + service);
  }
  std::string mac =
      weak_mac(sit->second, ticket_payload(principal, service, expires_unix));
  return "client=" + url_encode(principal) + "&service=" +
         url_encode(service) + "&expires=" + std::to_string(expires_unix) +
         "&mac=" + mac;
}

Result<std::string> Kdc::service_key(const std::string& service) const {
  auto it = services_.find(service);
  if (it == services_.end()) {
    return Error(ENOENT, "kdc: unknown service: " + service);
  }
  return it->second;
}

Result<KrbTicketFields> parse_krb_ticket(const std::string& token) {
  KrbTicketFields out;
  for (const std::string& pair : split(token, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Error(EINVAL, "kerberos: malformed ticket field");
    }
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    if (key == "client") {
      out.client = url_decode(value);
    } else if (key == "service") {
      out.service = url_decode(value);
    } else if (key == "expires") {
      auto n = parse_i64(value);
      if (!n) return Error(EINVAL, "kerberos: bad expiry");
      out.expires = *n;
    } else if (key == "mac") {
      out.mac = value;
    } else {
      return Error(EINVAL, "kerberos: unknown ticket field: " + key);
    }
  }
  if (out.client.empty() || out.service.empty() || out.mac.empty()) {
    return Error(EINVAL, "kerberos: incomplete ticket");
  }
  return out;
}

KerberosServerMethod::KerberosServerMethod(std::string service,
                                           std::string service_key,
                                           TimeFn time_fn)
    : service_(std::move(service)),
      service_key_(std::move(service_key)),
      time_fn_(std::move(time_fn)) {}

Result<Subject> KerberosServerMethod::authenticate(const PeerInfo& peer,
                                                   const std::string& arg,
                                                   ChallengeIo& io) {
  (void)peer;
  (void)io;
  TSS_ASSIGN_OR_RETURN(KrbTicketFields ticket, parse_krb_ticket(arg));
  if (ticket.service != service_) {
    return Error(EACCES, "kerberos: ticket is for service " + ticket.service);
  }
  std::string expected = weak_mac(
      service_key_,
      ticket_payload(ticket.client, ticket.service, ticket.expires));
  if (expected != ticket.mac) {
    return Error(EACCES, "kerberos: bad ticket MAC");
  }
  if (ticket.expires <= time_fn_()) {
    return Error(EACCES, "kerberos: ticket expired");
  }
  return Subject{"kerberos", ticket.client};
}

}  // namespace tss::auth
