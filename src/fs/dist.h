// DistFs: the stub-file distributed filesystem — the paper's DPFS and DSFS.
//
// The directory tree lives in a *metadata filesystem*; file bodies live in
// data files spread across a set of *data servers*, located through stub
// files (fs/stub.h). Because the metadata store is just another FileSystem,
// the two §5 abstractions are the same class:
//
//   DPFS: DistFs(LocalFs(metadata_dir), servers)   — private to one user
//   DSFS: DistFs(CfsFs(directory_server), servers) — shared by many users
//
// Semantics from §5, implemented literally:
//  * File creation ordering: (1) choose a server and generate a unique data
//    file name from the client id, current time, and a random number;
//    (2) create the stub with an *exclusive open* in the directory tree;
//    (3) create the data file. A crash between 2 and 3 leaves a dangling
//    stub whose open yields "file not found" — better than an unreferenced
//    data file. Deletion removes the data file, then the stub.
//  * Name-only operations (mkdir, rename, rmdir, readdir) touch only the
//    directory tree, never a data server.
//  * Once opened, a file is accessed directly on its data server, without
//    reference to the directory structure.
//  * Failure coherence: losing a data server makes only its files
//    unavailable; the directory tree remains navigable. stat of a file costs
//    a stub read plus a data-server stat — the 2x metadata latency visible
//    in Figure 4.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "fs/filesystem.h"
#include "fs/stub.h"
#include "par/executor.h"
#include "util/rand.h"

namespace tss::fs {

class DistFs final : public FileSystem {
 public:
  struct Options {
    // Directory on every data server under which data files are placed
    // (the paper's "/mydpfs"). Distinguishable per filesystem, which is what
    // makes manual recovery of a lost directory server possible (§5).
    std::string volume = "/tssdata";
    // Client identity mixed into data file names (the paper uses the client
    // IP address); defaults to a host/pid-derived token.
    std::string client_id;
    uint64_t name_seed = 0;  // 0 = derive from time (tests pass a fixed seed)
    // With a scheduler, file creation probes every candidate data server
    // concurrently and places the data file on a reachable one — one
    // parallel round trip instead of a serial walk over dead servers.
    // Borrowed, may be null = serial.
    IoScheduler* scheduler = nullptr;
  };

  // `metadata` and the mapped data servers are borrowed, not owned; they
  // must outlive the DistFs. Server map keys are the names stubs refer to.
  DistFs(FileSystem* metadata, std::map<std::string, FileSystem*> servers,
         Options options);

  // Creates the volume directory on every data server (idempotent). Run
  // once when establishing a new filesystem.
  Result<void> format();

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  // Where a logical file's bytes actually live (for tests, the auditor, and
  // manual recovery tooling).
  Result<Stub> locate(const std::string& path);

  // Test hook: invoked at named points in multi-step operations; returning
  // an error simulates a crash at that point ("crash-between-2-and-3" from
  // §5). Points: "stub-created" (after step 2, before step 3),
  // "data-deleted" (after data removal, before stub removal).
  using FaultHook = std::function<Result<void>(const std::string& point)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  Result<void> fault(const std::string& point);
  FileSystem* server_for(const std::string& name);
  std::string generate_data_name();

  FileSystem* metadata_;
  std::map<std::string, FileSystem*> servers_;
  std::vector<std::string> server_names_;
  Options options_;
  Rng rng_;
  FaultHook fault_hook_;
};

}  // namespace tss::fs
