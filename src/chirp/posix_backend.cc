#include "chirp/posix_backend.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include "util/path.h"

namespace tss::chirp {

namespace {
StatInfo stat_from_host(const struct stat& st) {
  StatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mode = st.st_mode & 07777;
  info.mtime = st.st_mtime;
  info.inode = st.st_ino;
  info.is_dir = S_ISDIR(st.st_mode);
  return info;
}
}  // namespace

PosixBackend::PosixBackend(std::string root) : root_(std::move(root)) {
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

PosixBackend::~PosixBackend() {
  for (auto& [handle, fd] : handles_) ::close(fd);
}

std::string PosixBackend::host_path(const std::string& canonical) const {
  return path::to_host(root_, canonical);
}

Result<int> PosixBackend::host_fd(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad backend handle");
  return it->second;
}

Result<int> PosixBackend::stream_fd(int handle) { return host_fd(handle); }

Result<int> PosixBackend::open(const std::string& path, const OpenFlags& flags,
                               uint32_t mode) {
  int fd = ::open(host_path(path).c_str(), flags.to_posix(),
                  static_cast<mode_t>(mode));
  if (fd < 0) return Error::from_errno("open " + path);
  std::lock_guard<std::mutex> lock(mutex_);
  int handle = next_handle_++;
  handles_[handle] = fd;
  return handle;
}

Result<size_t> PosixBackend::pread(int handle, void* data, size_t size,
                                   int64_t offset) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  ssize_t n = ::pread(fd, data, size, offset);
  if (n < 0) return Error::from_errno("pread");
  return static_cast<size_t>(n);
}

Result<size_t> PosixBackend::pwrite(int handle, const void* data, size_t size,
                                    int64_t offset) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  ssize_t n = ::pwrite(fd, data, size, offset);
  if (n < 0) return Error::from_errno("pwrite");
  return static_cast<size_t>(n);
}

Result<void> PosixBackend::fsync(int handle) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  if (::fsync(fd) < 0) return Error::from_errno("fsync");
  return Result<void>::success();
}

Result<void> PosixBackend::close(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad backend handle");
  ::close(it->second);
  handles_.erase(it);
  return Result<void>::success();
}

Result<StatInfo> PosixBackend::fstat(int handle) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  struct stat st{};
  if (::fstat(fd, &st) < 0) return Error::from_errno("fstat");
  return stat_from_host(st);
}

Result<StatInfo> PosixBackend::stat(const std::string& path) {
  struct stat st{};
  if (::lstat(host_path(path).c_str(), &st) < 0) {
    return Error::from_errno("stat " + path);
  }
  return stat_from_host(st);
}

Result<void> PosixBackend::unlink(const std::string& path) {
  if (::unlink(host_path(path).c_str()) < 0) {
    return Error::from_errno("unlink " + path);
  }
  return Result<void>::success();
}

Result<void> PosixBackend::rename(const std::string& from,
                                  const std::string& to) {
  if (::rename(host_path(from).c_str(), host_path(to).c_str()) < 0) {
    return Error::from_errno("rename " + from);
  }
  return Result<void>::success();
}

Result<void> PosixBackend::mkdir(const std::string& path, uint32_t mode) {
  if (::mkdir(host_path(path).c_str(), static_cast<mode_t>(mode)) < 0) {
    return Error::from_errno("mkdir " + path);
  }
  return Result<void>::success();
}

Result<void> PosixBackend::rmdir(const std::string& path) {
  if (::rmdir(host_path(path).c_str()) < 0) {
    return Error::from_errno("rmdir " + path);
  }
  return Result<void>::success();
}

Result<void> PosixBackend::truncate(const std::string& path, uint64_t size) {
  if (::truncate(host_path(path).c_str(), static_cast<off_t>(size)) < 0) {
    return Error::from_errno("truncate " + path);
  }
  return Result<void>::success();
}

Result<std::vector<DirEntry>> PosixBackend::readdir(const std::string& path) {
  std::string host = host_path(path);
  DIR* dir = ::opendir(host.c_str());
  if (!dir) return Error::from_errno("opendir " + path);
  std::vector<DirEntry> entries;
  while (dirent* de = ::readdir(dir)) {
    std::string name = de->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::lstat((host + "/" + name).c_str(), &st) != 0) continue;
    entries.push_back(DirEntry{std::move(name), stat_from_host(st)});
  }
  ::closedir(dir);
  return entries;
}

Result<std::string> PosixBackend::read_file(const std::string& path) {
  int fd = ::open(host_path(path).c_str(), O_RDONLY);
  if (fd < 0) return Error::from_errno("open " + path);
  std::string data;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      int e = errno;
      ::close(fd);
      return Error::from_errno(e, "read " + path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

Result<void> PosixBackend::write_file(const std::string& path,
                                      std::string_view data, uint32_t mode) {
  int fd = ::open(host_path(path).c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                  static_cast<mode_t>(mode));
  if (fd < 0) return Error::from_errno("open " + path);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      int e = errno;
      ::close(fd);
      return Error::from_errno(e, "write " + path);
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return Result<void>::success();
}

Result<std::pair<uint64_t, uint64_t>> PosixBackend::statfs() {
  struct statvfs sv{};
  if (::statvfs(root_.c_str(), &sv) < 0) return Error::from_errno("statvfs");
  uint64_t total = static_cast<uint64_t>(sv.f_blocks) * sv.f_frsize;
  uint64_t free_bytes = static_cast<uint64_t>(sv.f_bavail) * sv.f_frsize;
  return std::make_pair(total, free_bytes);
}

}  // namespace tss::chirp
