// ReplicatedFs under injected faults: read failover, divergence tracking,
// repair convergence, and the per-replica circuit breaker.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/replicated.h"

namespace tss::fs {
namespace {

class ReplicatedFaultTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 3;

  void SetUp() override {
    base_ = ::testing::TempDir() + "/replfault_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < kReplicas; i++) {
      std::string root = base_ + "/r" + std::to_string(i);
      std::filesystem::create_directories(root);
      locals_.push_back(std::make_unique<LocalFs>(root));
      schedules_.push_back(std::make_unique<FaultSchedule>(100 + i));
      faulty_.push_back(
          std::make_unique<FaultyFs>(locals_[i].get(), schedules_[i].get()));
    }
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<FileSystem*> members() {
    std::vector<FileSystem*> out;
    for (auto& f : faulty_) out.push_back(f.get());
    return out;
  }

  std::string base_;
  std::vector<std::unique_ptr<LocalFs>> locals_;
  std::vector<std::unique_ptr<FaultSchedule>> schedules_;
  std::vector<std::unique_ptr<FaultyFs>> faulty_;
  static inline int counter_ = 0;
};

TEST_F(ReplicatedFaultTest, ReadFailsOverWhenFirstReplicaDies) {
  ReplicatedFs fs(members());
  ASSERT_TRUE(fs.write_file("/doc", "replicated").ok());

  schedules_[0]->fail_always(EHOSTUNREACH);  // replica 0 dies
  auto got = fs.read_file("/doc");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), "replicated");
}

TEST_F(ReplicatedFaultTest, PartialWriteFailureMarksReplicaDiverged) {
  ReplicatedFs fs(members());
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  schedules_[2]->fail_always(ECONNRESET);
  ASSERT_TRUE(fs.write_file("/doc", "v2").ok());  // quorum-of-one suffices
  EXPECT_TRUE(fs.replica_diverged(2));
  EXPECT_FALSE(fs.replica_diverged(0));

  // The diverged replica really is stale on disk, and readers never see
  // the stale copy: divergence excludes it from the read order.
  schedules_[2]->clear();
  EXPECT_EQ(locals_[2]->read_file("/doc").value(), "v1");
  EXPECT_EQ(fs.read_file("/doc").value(), "v2");
}

TEST_F(ReplicatedFaultTest, RepairConvergesDivergedReplicas) {
  ReplicatedFs fs(members());
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());
  schedules_[1]->fail_always(ETIMEDOUT);
  ASSERT_TRUE(fs.write_file("/doc", "v2").ok());
  ASSERT_TRUE(fs.replica_diverged(1));

  schedules_[1]->clear();  // the replica comes back (with stale data)
  auto repaired = fs.repair("/doc");
  ASSERT_TRUE(repaired.ok()) << repaired.error().to_string();
  EXPECT_GE(repaired.value(), 1);
  EXPECT_FALSE(fs.replica_diverged(1));
  EXPECT_EQ(locals_[1]->read_file("/doc").value(), "v2");
}

TEST_F(ReplicatedFaultTest, TotalWriteFailureDoesNotMarkDivergence) {
  ReplicatedFs fs(members());
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());
  for (auto& s : schedules_) s->fail_once(EIO, "open");
  auto rc = fs.write_file("/doc", "v2");
  ASSERT_FALSE(rc.ok());
  // Nobody applied the mutation, so the replicas still agree.
  for (size_t i = 0; i < kReplicas; i++) {
    EXPECT_FALSE(fs.replica_diverged(i)) << "replica " << i;
  }
  EXPECT_EQ(fs.read_file("/doc").value(), "v1");
}

TEST_F(ReplicatedFaultTest, SemanticErrorsDoNotTripTheBreaker) {
  ReplicatedFs::Options options;
  options.failure_threshold = 2;
  ReplicatedFs fs(members(), options);
  // ENOENT over and over is an answer, not an outage.
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(fs.read_file("/missing").error().code, ENOENT);
  }
  for (size_t i = 0; i < kReplicas; i++) {
    EXPECT_TRUE(fs.replica_available(i)) << "replica " << i;
  }
}

TEST_F(ReplicatedFaultTest, BreakerOpensAfterConsecutiveFailuresAndSkipsReads) {
  ReplicatedFs::Options options;
  options.failure_threshold = 3;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "data").ok());

  schedules_[0]->fail_always(EHOSTUNREACH);
  uint64_t before_trip = schedules_[0]->ops_seen();
  // Each read retries replica 0 (paying its failure) until the breaker opens.
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(fs.read_file("/doc").ok());
  }
  EXPECT_FALSE(fs.replica_available(0));
  uint64_t at_trip = schedules_[0]->ops_seen();
  EXPECT_GT(at_trip, before_trip);

  // With the breaker open, reads no longer touch the dead replica at all.
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(fs.read_file("/doc").ok());
  }
  EXPECT_EQ(schedules_[0]->ops_seen(), at_trip);
}

TEST_F(ReplicatedFaultTest, ProbeClosesTheBreaker) {
  ReplicatedFs::Options options;
  options.failure_threshold = 2;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "data").ok());

  schedules_[0]->fail_always(EPIPE);
  for (int i = 0; i < 2; i++) ASSERT_TRUE(fs.read_file("/doc").ok());
  ASSERT_FALSE(fs.replica_available(0));

  // Probing while still down keeps the breaker open.
  EXPECT_FALSE(fs.probe(0).ok());
  EXPECT_FALSE(fs.replica_available(0));

  schedules_[0]->clear();
  EXPECT_TRUE(fs.probe(0).ok());
  EXPECT_TRUE(fs.replica_available(0));
}

TEST_F(ReplicatedFaultTest, BreakerSkipsWritesButRecordsDivergence) {
  ReplicatedFs::Options options;
  options.failure_threshold = 2;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  schedules_[1]->fail_always(ECONNREFUSED);
  ASSERT_TRUE(fs.write_file("/doc", "v2").ok());
  ASSERT_TRUE(fs.write_file("/doc", "v3").ok());
  ASSERT_FALSE(fs.replica_available(1));
  uint64_t at_trip = schedules_[1]->ops_seen();

  // Further mutations skip the broken replica entirely but still remember
  // that it is falling behind.
  ASSERT_TRUE(fs.write_file("/doc", "v4").ok());
  EXPECT_EQ(schedules_[1]->ops_seen(), at_trip);
  EXPECT_TRUE(fs.replica_diverged(1));

  // Recovery: server returns, repair converges it and closes the breaker.
  schedules_[1]->clear();
  auto repaired = fs.repair("/doc");
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(fs.replica_available(1));
  EXPECT_FALSE(fs.replica_diverged(1));
  EXPECT_EQ(locals_[1]->read_file("/doc").value(), "v4");
}

TEST_F(ReplicatedFaultTest, AllBreakersOpenStillAttemptsTheOperation) {
  ReplicatedFs::Options options;
  options.failure_threshold = 1;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());
  for (auto& s : schedules_) s->fail_always(EHOSTUNREACH);
  (void)fs.read_file("/doc");  // trips every breaker
  for (size_t i = 0; i < kReplicas; i++) {
    ASSERT_FALSE(fs.replica_available(i));
  }
  // Everything is "down", but the servers actually answer again: operations
  // must still be attempted (breakers are advice, not a death sentence).
  for (auto& s : schedules_) s->clear();
  EXPECT_EQ(fs.read_file("/doc").value(), "v1");
}

}  // namespace
}  // namespace tss::fs
