#include "nfs/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <optional>
#include <vector>

#include "net/event_loop.h"
#include "nfs/wire.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::nfs {

namespace {

chirp::StatInfo stat_from_host(const struct stat& st) {
  chirp::StatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mode = st.st_mode & 07777;
  info.mtime = st.st_mtime;
  info.inode = st.st_ino;
  info.is_dir = S_ISDIR(st.st_mode);
  return info;
}

}  // namespace

// One NFS-baseline connection as a resumable session. Every RPC is a single
// request line and a single response except `write`, whose body follows the
// line: the session parses and validates the header, then waits (without a
// thread) until the whole body is buffered before touching the disk.
class NfsSession final : public net::ReactorSession {
 public:
  explicit NfsSession(Server* server) : server_(server) {}

  void on_start(net::Conn& c) override {
    c.set_timeout(server_->options_.io_timeout);
  }

  bool on_input(net::Conn& c) override {
    while (true) {
      if (pending_write_) {
        if (c.input().available() < pending_write_->count) break;
        finish_write(c);
        continue;
      }
      auto line = c.input().try_line();
      if (!line.ok()) return false;  // oversized request line
      if (!line.value().has_value()) break;
      handle_line(c, *line.value());
    }
    // EOF mid-body or at a line boundary both just end the session.
    return !c.input_eof();
  }

 private:
  struct PendingWrite {
    std::string path;  // canonical virtual path, resolved at header time
    int64_t offset = 0;
    size_t count = 0;
  };

  void reply(net::Conn& c, const std::string& line) { c.write(line + "\n"); }
  void fail(net::Conn& c, const Error& e) {
    reply(c, "error " + std::to_string(e.code) + " " + url_encode(e.message));
  }

  void finish_write(net::Conn& c) {
    std::string payload(pending_write_->count, '\0');
    c.input().read(payload.data(), payload.size());
    int fd = ::open(server_->host_path(pending_write_->path).c_str(), O_WRONLY);
    if (fd < 0) {
      fail(c, Error(ESTALE, "stale file handle"));
    } else {
      ssize_t n = ::pwrite(fd, payload.data(), payload.size(),
                           static_cast<off_t>(pending_write_->offset));
      ::close(fd);
      if (n < 0) {
        fail(c, Error::from_errno("write"));
      } else {
        reply(c, "ok " + std::to_string(n));
      }
    }
    pending_write_.reset();
  }

  void handle_line(net::Conn& c, const std::string& line) {
    auto w = split_words(line);
    if (w.empty()) return;
    const std::string& cmd = w[0];

    auto arg_fh = [](const std::vector<std::string>& words,
                     size_t i) -> Result<uint64_t> {
      if (i >= words.size()) return Error(EPROTO, "missing filehandle");
      auto n = parse_u64(words[i]);
      if (!n) return Error(EPROTO, "bad filehandle");
      return *n;
    };

    if (cmd == "mount") {
      reply(c, "ok 1");
    } else if (cmd == "lookup" && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(c, fh.error());
      } else {
        auto dir = server_->path_for(fh.value());
        if (!dir.ok()) {
          fail(c, dir.error());
        } else {
          std::string name = url_decode(w[2]);
          std::string child = path::join(dir.value(), name);
          struct stat st{};
          if (::lstat(server_->host_path(child).c_str(), &st) != 0) {
            fail(c, Error::from_errno("lookup"));
          } else {
            uint64_t child_fh = server_->handle_for(child);
            reply(c, "ok " + std::to_string(child_fh) + " " +
                         stat_from_host(st).encode());
          }
        }
      }
    } else if (cmd == "getattr" && w.size() >= 2) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(c, fh.error());
      } else if (auto p = server_->path_for(fh.value()); !p.ok()) {
        fail(c, p.error());
      } else {
        struct stat st{};
        if (::lstat(server_->host_path(p.value()).c_str(), &st) != 0) {
          fail(c, Error(ESTALE, "stale file handle"));
        } else {
          reply(c, "ok " + stat_from_host(st).encode());
        }
      }
    } else if ((cmd == "read" || cmd == "write") && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto offset = parse_i64(w[2]);
      auto count = parse_u64(w[3]);
      if (!fh.ok() || !offset || !count) {
        fail(c, Error(EPROTO, "bad read/write args"));
      } else if (*count > kMaxTransfer) {
        fail(c, Error(EMSGSIZE, "transfer exceeds NFS maximum"));
      } else if (auto p = server_->path_for(fh.value()); !p.ok()) {
        fail(c, p.error());
      } else if (cmd == "read") {
        int fd = ::open(server_->host_path(p.value()).c_str(), O_RDONLY);
        if (fd < 0) {
          fail(c, Error(ESTALE, "stale file handle"));
        } else {
          std::string payload(static_cast<size_t>(*count), '\0');
          ssize_t n = ::pread(fd, payload.data(), payload.size(), *offset);
          ::close(fd);
          if (n < 0) {
            fail(c, Error::from_errno("read"));
          } else {
            reply(c, "ok " + std::to_string(n));
            c.write(std::string_view(payload.data(), static_cast<size_t>(n)));
          }
        }
      } else {  // write: the body follows; resume once it is all buffered
        pending_write_ = PendingWrite{p.value(), *offset,
                                      static_cast<size_t>(*count)};
      }
    } else if (cmd == "create" && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto mode = parse_u64(w[3]);
      if (!fh.ok() || !mode) {
        fail(c, Error(EPROTO, "bad create args"));
      } else if (auto dir = server_->path_for(fh.value()); !dir.ok()) {
        fail(c, dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        int fd = ::open(server_->host_path(child).c_str(), O_WRONLY | O_CREAT,
                        static_cast<mode_t>(*mode));
        if (fd < 0) {
          fail(c, Error::from_errno("create"));
        } else {
          struct stat st{};
          ::fstat(fd, &st);
          ::close(fd);
          reply(c, "ok " + std::to_string(server_->handle_for(child)) + " " +
                       stat_from_host(st).encode());
        }
      }
    } else if ((cmd == "remove" || cmd == "rmdir") && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(c, fh.error());
      } else if (auto dir = server_->path_for(fh.value()); !dir.ok()) {
        fail(c, dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        int rc = cmd == "remove"
                     ? ::unlink(server_->host_path(child).c_str())
                     : ::rmdir(server_->host_path(child).c_str());
        if (rc != 0) {
          fail(c, Error::from_errno(cmd));
        } else {
          reply(c, "ok");
        }
      }
    } else if (cmd == "rename" && w.size() >= 5) {
      auto fh1 = arg_fh(w, 1);
      auto fh2 = arg_fh(w, 3);
      if (!fh1.ok() || !fh2.ok()) {
        fail(c, Error(EPROTO, "bad rename args"));
      } else {
        auto d1 = server_->path_for(fh1.value());
        auto d2 = server_->path_for(fh2.value());
        if (!d1.ok() || !d2.ok()) {
          fail(c, Error(ESTALE, "stale file handle"));
        } else {
          std::string from = path::join(d1.value(), url_decode(w[2]));
          std::string to = path::join(d2.value(), url_decode(w[4]));
          if (::rename(server_->host_path(from).c_str(),
                       server_->host_path(to).c_str()) != 0) {
            fail(c, Error::from_errno("rename"));
          } else {
            reply(c, "ok");
          }
        }
      }
    } else if (cmd == "mkdir" && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto mode = parse_u64(w[3]);
      if (!fh.ok() || !mode) {
        fail(c, Error(EPROTO, "bad mkdir args"));
      } else if (auto dir = server_->path_for(fh.value()); !dir.ok()) {
        fail(c, dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        if (::mkdir(server_->host_path(child).c_str(),
                    static_cast<mode_t>(*mode)) != 0) {
          fail(c, Error::from_errno("mkdir"));
        } else {
          reply(c, "ok " + std::to_string(server_->handle_for(child)));
        }
      }
    } else if (cmd == "readdir" && w.size() >= 2) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(c, fh.error());
      } else if (auto p = server_->path_for(fh.value()); !p.ok()) {
        fail(c, p.error());
      } else {
        DIR* dir = ::opendir(server_->host_path(p.value()).c_str());
        if (!dir) {
          fail(c, Error::from_errno("readdir"));
        } else {
          std::vector<std::string> names;
          while (dirent* de = ::readdir(dir)) {
            std::string name = de->d_name;
            if (name == "." || name == "..") continue;
            names.push_back(url_encode(name));
          }
          ::closedir(dir);
          reply(c, "ok " + std::to_string(names.size()));
          for (const std::string& name : names) reply(c, name);
        }
      }
    } else if (cmd == "truncate" && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      auto size = parse_u64(w[2]);
      if (!fh.ok() || !size) {
        fail(c, Error(EPROTO, "bad truncate args"));
      } else if (auto p = server_->path_for(fh.value()); !p.ok()) {
        fail(c, p.error());
      } else if (::truncate(server_->host_path(p.value()).c_str(),
                            static_cast<off_t>(*size)) != 0) {
        fail(c, Error::from_errno("truncate"));
      } else {
        reply(c, "ok");
      }
    } else {
      fail(c, Error(ENOSYS, "unknown rpc: " + cmd));
    }
  }

  Server* server_;
  std::optional<PendingWrite> pending_write_;
};

Server::Server(Options options) : options_(std::move(options)) {
  handle_to_path_[1] = "/";
  path_to_handle_["/"] = 1;
}

Server::~Server() { stop(); }

Result<void> Server::start() {
  return loop_.start(options_.host, options_.port,
                     [this]() -> std::shared_ptr<net::ReactorSession> {
                       return std::make_shared<NfsSession>(this);
                     },
                     net::ServerLoop::Limits{});
}

void Server::stop() { loop_.stop(); }

std::string Server::host_path(const std::string& canonical) const {
  return path::to_host(options_.export_root, canonical);
}

uint64_t Server::handle_for(const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = path_to_handle_.find(canonical);
  if (it != path_to_handle_.end()) return it->second;
  uint64_t fh = next_handle_++;
  path_to_handle_[canonical] = fh;
  handle_to_path_[fh] = canonical;
  return fh;
}

Result<std::string> Server::path_for(uint64_t fh) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handle_to_path_.find(fh);
  if (it == handle_to_path_.end()) {
    return Error(ESTALE, "stale file handle");
  }
  return it->second;
}

}  // namespace tss::nfs
