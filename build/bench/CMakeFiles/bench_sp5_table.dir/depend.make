# Empty dependencies file for bench_sp5_table.
# This may be replaced when dependencies are built.
