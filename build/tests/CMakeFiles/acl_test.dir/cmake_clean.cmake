file(REMOVE_RECURSE
  "CMakeFiles/acl_test.dir/acl/acl_test.cc.o"
  "CMakeFiles/acl_test.dir/acl/acl_test.cc.o.d"
  "acl_test"
  "acl_test.pdb"
  "acl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
