#include "auth/hostname.h"

namespace tss::auth {

HostnameResolver default_hostname_resolver() {
  return [](const std::string& ip) -> std::string {
    if (ip == "127.0.0.1" || ip == "::1") return "localhost";
    return ip;
  };
}

HostnameServerMethod::HostnameServerMethod(HostnameResolver resolver)
    : resolver_(resolver ? std::move(resolver) : nullptr) {}

Result<Subject> HostnameServerMethod::authenticate(const PeerInfo& peer,
                                                   const std::string& arg,
                                                   ChallengeIo& io) {
  (void)arg;
  (void)io;
  std::string name;
  if (resolver_) {
    name = resolver_(peer.ip);
  } else if (!peer.hostname.empty()) {
    name = peer.hostname;
  } else {
    name = default_hostname_resolver()(peer.ip);
  }
  if (name.empty()) {
    return Error(EACCES, "hostname: peer address unresolvable");
  }
  return Subject{"hostname", name};
}

}  // namespace tss::auth
