// Chaos-to-metrics accounting: every injected fault, breaker transition,
// and reconnect backoff must land in the observability registry with an
// exact count. Deterministic by construction — seeded schedules, a virtual
// clock, and per-test registries.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>

#include "fs/cfs.h"
#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/replicated.h"
#include "obs/metrics.h"
#include "chirp/test_util.h"
#include "util/clock.h"

namespace tss::fs {
namespace {

class ObsChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/obschaos_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string make_root(const std::string& name) {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    return root;
  }

  std::string base_;
  static inline int counter_ = 0;
};

TEST_F(ObsChaosTest, ScheduledFaultsProduceExactlyThatManyRegistryTriggers) {
  obs::Registry registry;
  VirtualClock clock;
  FaultSchedule schedule(/*seed=*/42, &clock, &registry);
  LocalFs local(make_root("local"));
  FaultyFs faulty(&local, &schedule);
  ASSERT_TRUE(faulty.write_file("/f", "data").ok());
  uint64_t setup_ops = schedule.ops_seen();

  // Two scheduled faults over eight stats: the 2nd and 5th fail.
  schedule.fail_nth(2, EIO, "stat");
  schedule.fail_nth(5, EIO, "stat");
  int failures = 0;
  for (int i = 0; i < 8; i++) {
    if (!faulty.stat("/f").ok()) failures++;
  }
  EXPECT_EQ(failures, 2);

  // The registry mirrors the schedule's own books exactly.
  EXPECT_EQ(schedule.faults_injected(), 2u);
  EXPECT_EQ(registry.counter_value("fault.injected"), 2u);
  EXPECT_EQ(schedule.ops_seen(), setup_ops + 8);
  EXPECT_EQ(registry.counter_value("fault.ops_seen"), schedule.ops_seen());
}

TEST_F(ObsChaosTest, BreakerOpenCloseAndRepairTransitionsAreCountedOnce) {
  obs::Registry registry;
  LocalFs local0(make_root("r0"));
  LocalFs local1(make_root("r1"));
  VirtualClock clock;
  FaultSchedule schedule0(1, &clock, &registry);
  FaultSchedule schedule1(2, &clock, &registry);
  FaultyFs replica0(&local0, &schedule0);
  FaultyFs replica1(&local1, &schedule1);

  ReplicatedFs::Options options;
  options.failure_threshold = 3;
  options.metrics = &registry;
  ReplicatedFs fs({&replica0, &replica1}, options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  // Replica 1 dies: three consecutive failed mutations trip its breaker
  // exactly once, and the first failure marks it diverged exactly once.
  schedule1.fail_always(EHOSTUNREACH);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(fs.write_file("/doc", "v" + std::to_string(2 + i)).ok());
  }
  EXPECT_FALSE(fs.replica_available(1));
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 1u);

  // Further writes skip the open breaker — no re-opens, no re-divergence.
  ASSERT_TRUE(fs.write_file("/doc", "v9").ok());
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 1u);

  // The replica comes back: probe closes the breaker (one close), and
  // repair converges the stale copy (one repaired).
  schedule1.clear();
  ASSERT_TRUE(fs.probe(1).ok());
  EXPECT_TRUE(fs.replica_available(1));
  EXPECT_EQ(registry.counter_value("replicated.breaker_closes"), 1u);
  auto repaired = fs.repair("/doc");
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 1);
  EXPECT_EQ(registry.counter_value("replicated.repaired"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.breaker_closes"), 1u);
  EXPECT_FALSE(fs.replica_diverged(1));
  EXPECT_EQ(fs.read_file("/doc").value(), "v9");
}

// A full open/close breaker cycle driven by repair() alone (no probe), to
// pin the other close path.
TEST_F(ObsChaosTest, RepairAloneClosesAnOpenBreaker) {
  obs::Registry registry;
  LocalFs local0(make_root("a0"));
  LocalFs local1(make_root("a1"));
  VirtualClock clock;
  FaultSchedule schedule1(3, &clock, &registry);
  FaultyFs replica1(&local1, &schedule1);

  ReplicatedFs::Options options;
  options.failure_threshold = 2;
  options.metrics = &registry;
  ReplicatedFs fs({&local0, &replica1}, options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  schedule1.fail_always(ETIMEDOUT);
  ASSERT_TRUE(fs.write_file("/doc", "v2").ok());
  ASSERT_TRUE(fs.write_file("/doc", "v3").ok());
  ASSERT_FALSE(fs.replica_available(1));
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 1u);

  schedule1.clear();
  auto repaired = fs.repair("/doc");
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 1);
  EXPECT_TRUE(fs.replica_available(1));
  EXPECT_EQ(registry.counter_value("replicated.breaker_closes"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.repaired"), 1u);
}

// The same exactly-once accounting guarantee on the *concurrent* path:
// with an IoScheduler fanning replica writes out in parallel, seeded faults
// must still produce exactly one breaker-open and one diverged transition
// per replica incident — the fan-out joins before accounting, so the
// parallel books match the serial books to the counter.
TEST_F(ObsChaosTest, ConcurrentReplicaWritesCountTransitionsExactlyOnce) {
  obs::Registry registry;
  LocalFs local0(make_root("c0"));
  LocalFs local1(make_root("c1"));
  LocalFs local2(make_root("c2"));
  VirtualClock clock;
  FaultSchedule schedule1(21, &clock, &registry);
  FaultSchedule schedule2(22, &clock, &registry);
  FaultyFs replica1(&local1, &schedule1);
  FaultyFs replica2(&local2, &schedule2);

  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  scheduler_options.metrics = &registry;
  IoScheduler scheduler(scheduler_options);

  ReplicatedFs::Options options;
  options.failure_threshold = 3;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  ReplicatedFs fs({&local0, &replica1, &replica2}, options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  // Both faulty replicas die at once. Every parallel write round fans out
  // to all live replicas; three rounds trip each breaker exactly once and
  // mark each replica diverged exactly once — never double-counted by the
  // concurrent completions.
  schedule1.fail_always(EHOSTUNREACH);
  schedule2.fail_always(ETIMEDOUT);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(fs.write_file("/doc", "v" + std::to_string(2 + i)).ok());
  }
  EXPECT_FALSE(fs.replica_available(1));
  EXPECT_FALSE(fs.replica_available(2));
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 2u);
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 2u);

  // Writes beyond the trip skip the open breakers: no further transitions.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(fs.write_file("/doc", "w" + std::to_string(i)).ok());
  }
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 2u);
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 2u);

  // Recovery is also exactly-once per replica on the concurrent path.
  schedule1.clear();
  schedule2.clear();
  ASSERT_TRUE(fs.probe(1).ok());
  ASSERT_TRUE(fs.probe(2).ok());
  EXPECT_EQ(registry.counter_value("replicated.breaker_closes"), 2u);
  auto repaired = fs.repair("/doc");
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 2);
  EXPECT_EQ(registry.counter_value("replicated.repaired"), 2u);
  EXPECT_FALSE(fs.replica_diverged(1));
  EXPECT_FALSE(fs.replica_diverged(2));
  EXPECT_EQ(fs.read_file("/doc").value(), "w3");

  // The engine's own books balance: everything submitted completed, and
  // nothing is left in flight.
  EXPECT_EQ(registry.counter_value("client.submitted"),
            registry.counter_value("client.completed"));
  EXPECT_EQ(registry.gauge("client.inflight")->value(), 0);
}

class ObsCfsReconnectTest : public chirp::testing::ChirpServerFixture {};

TEST_F(ObsCfsReconnectTest, BackoffAttemptAndSleepCountsAreExact) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;  // backoff sleeps advance virtual time only

  auto credential = std::make_shared<auth::HostnameClientCredential>();
  CfsFs::ConnectFn real = chirp_connector(server_->endpoint(), {credential});
  int connect_calls = 0;
  CfsFs::ConnectFn flaky = [&]() -> Result<chirp::Client> {
    if (connect_calls++ < 2) {
      return Error(ECONNREFUSED, "injected connect failure");
    }
    return real();
  };

  CfsFs::Options options;
  options.retry.max_attempts = 5;
  options.retry.base_delay = 5 * kMillisecond;
  options.jitter_seed = 7;
  options.metrics = &registry;
  CfsFs fs(flaky, options, &clock);

  // First operation triggers the initial connect incident: attempts 1 and 2
  // fail, attempt 3 succeeds. Sleeps happen before every attempt but the
  // first, so two connect failures cost exactly two backoff sleeps.
  Nanos before = clock.now();
  ASSERT_TRUE(fs.mkdir("/made", 0755).ok());
  EXPECT_EQ(connect_calls, 3);
  EXPECT_EQ(registry.counter_value("cfs.reconnect_attempts"), 3u);
  EXPECT_EQ(registry.counter_value("cfs.backoff_sleeps"), 2u);
  EXPECT_EQ(registry.counter_value("cfs.reconnects"), 1u);
  EXPECT_EQ(registry.counter_value("cfs.transport_errors"), 0u);
  EXPECT_GT(clock.now(), before);  // the backoff really slept (virtually)

  // A healthy connection does not touch the recovery counters.
  ASSERT_TRUE(fs.stat("/made").ok());
  EXPECT_EQ(registry.counter_value("cfs.reconnect_attempts"), 3u);
  EXPECT_EQ(registry.counter_value("cfs.reconnects"), 1u);
}

}  // namespace
}  // namespace tss::fs
