// Minimal command-line flag parsing for the tss_* tools.
//
// Supports "--name value", "--name=value", and bare positional arguments.
// Unknown flags are an error; tools print their own usage.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/strings.h"

namespace tss::tools {

class Flags {
 public:
  // `known` lists accepted flag names (without the leading dashes).
  static Result<Flags> parse(int argc, char** argv,
                             const std::set<std::string>& known) {
    Flags flags;
    for (int i = 1; i < argc; i++) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        flags.positional_.push_back(arg);
        continue;
      }
      std::string name = arg.substr(2);
      std::string value;
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Error(EINVAL, "flag --" + name + " needs a value");
      }
      if (!known.count(name)) {
        return Error(EINVAL, "unknown flag --" + name);
      }
      flags.values_[name] = value;
    }
    return flags;
  }

  std::optional<std::string> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& name,
                     const std::string& fallback) const {
    return get(name).value_or(fallback);
  }
  Result<int64_t> get_int(const std::string& name, int64_t fallback) const {
    auto v = get(name);
    if (!v) return fallback;
    auto n = parse_i64(*v);
    if (!n) return Error(EINVAL, "flag --" + name + " must be an integer");
    return *n;
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tss::tools
