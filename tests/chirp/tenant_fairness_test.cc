// Multi-tenant isolation over live TCP servers: the alloc capability and
// mkalloc/lsalloc RPCs, backend ENOSPC enforcement, journal survival across
// server restarts, per-subject quota refusal (EDQUOT), exact tenant.*
// counter accounting, interop with capability-less clients, and the
// hog-tenant chaos scenario under weighted fair-share admission. Runs on
// both execution engines via TSS_NET_MODE (scripts/check.sh drives both).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "util/strings.h"

namespace tss::chirp {
namespace {

constexpr int64_t kFarFuture = int64_t{1} << 40;

class TenantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/tenant_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
  }

  ServerOptions base_options() {
    ServerOptions options;
    options.owner = "hostname:localhost";
    options.root_acl = acl::Acl::parse(
                           "hostname:localhost rwldav(rwlda)\n"
                           "globus:* rwldav(rwlda)\n")
                           .value();
    options.metrics = &registry_;
    return options;
  }

  void start_server(ServerOptions options) {
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    auto gsi = std::make_unique<auth::GsiServerMethod>();
    gsi->trust(ca_);
    auth->add(std::move(gsi));
    server_ = std::make_unique<Server>(
        std::move(options), std::make_unique<PosixBackend>(root_),
        std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }

  // An authenticated session for the tenant `dn` ("/CN=alice" etc.).
  Result<Client> connect_tenant(const std::string& dn,
                                bool alloc_ops = false) {
    Client::Options options;
    options.timeout = 10 * kSecond;
    options.alloc_ops = alloc_ops;
    auto client = Client::connect(server_->endpoint(), options);
    if (!client.ok()) return client;
    auth::GsiClientCredential credential(ca_.issue(dn, kFarFuture));
    auto subject = client.value().authenticate(credential);
    if (!subject.ok()) return std::move(subject).take_error();
    return client;
  }

  std::string root_;
  obs::Registry registry_;
  auth::GsiCa ca_{"test-ca", "tenant-suite-key"};
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

// --- Space allocations over the wire ----------------------------------------

TEST_F(TenantTest, MkallocLsallocLifecycle) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  options.root_space_limit = 100000;
  start_server(std::move(options));

  auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_TRUE(c.value().alloc_enabled());
  ASSERT_TRUE(c.value().mkdir("/proj").ok());
  ASSERT_TRUE(c.value().mkalloc("/proj", 2000).ok());

  auto info = c.value().lsalloc("/proj/anything");
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  EXPECT_EQ(info.value().root, "/proj");
  EXPECT_EQ(info.value().limit, 2000u);
  EXPECT_EQ(info.value().inuse, 0u);

  // The carved-out limit is pre-charged to the root allocation.
  auto root = c.value().lsalloc("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().root, "/");
  EXPECT_EQ(root.value().limit, 100000u);
  EXPECT_EQ(root.value().inuse, 2000u);

  // Duplicate and zero-limit mkallocs are typed failures.
  EXPECT_EQ(c.value().mkalloc("/proj", 500).error().code, EEXIST);
  ASSERT_TRUE(c.value().mkdir("/proj2").ok());
  EXPECT_EQ(c.value().mkalloc("/proj2", 200000).error().code, ENOSPC);
}

TEST_F(TenantTest, WritesBeyondAllocationAreRefusedWithEnospc) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  start_server(std::move(options));

  auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value().mkdir("/small").ok());
  ASSERT_TRUE(c.value().mkalloc("/small", 1000).ok());

  std::string big(1500, 'x');
  auto refused = c.value().putfile("/small/too-big", big);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, ENOSPC) << refused.error().to_string();
  // The refused write charged nothing: enforcement happens before the bytes
  // land, so at most an empty file remains.
  auto info = c.value().lsalloc("/small/x");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().inuse, 0u);
  auto leftover = c.value().stat("/small/too-big");
  if (leftover.ok()) EXPECT_EQ(leftover.value().size, 0u);

  // Within the budget the write lands and is charged exactly.
  std::string fits(800, 'y');
  ASSERT_TRUE(c.value().putfile("/small/fits", fits).ok());
  info = c.value().lsalloc("/small/x");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().inuse, 800u);

  // pwrite extension past the limit is refused; the file keeps its size.
  auto fd = c.value().open("/small/fits", OpenFlags{.write = true}, 0644);
  ASSERT_TRUE(fd.ok());
  std::string chunk(300, 'z');
  auto rc = c.value().pwrite(fd.value(), chunk.data(), chunk.size(), 800);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ENOSPC);
  ASSERT_TRUE(c.value().close_fd(fd.value()).ok());
  EXPECT_EQ(c.value().stat("/small/fits").value().size, 800u);

  // Deleting the file refunds its bytes.
  ASSERT_TRUE(c.value().unlink("/small/fits").ok());
  info = c.value().lsalloc("/small/x");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().inuse, 0u);
}

TEST_F(TenantTest, StatfsIsClampedByTheRootAllocation) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  options.root_space_limit = 50000;
  start_server(std::move(options));
  auto c = connect_tenant("/CN=alice");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value().putfile("/f", std::string(10000, 'a')).ok());
  auto fs = c.value().statfs();
  ASSERT_TRUE(fs.ok());
  EXPECT_LE(fs.value().first, 50000u);   // total
  EXPECT_LE(fs.value().second, 40000u);  // free
}

TEST_F(TenantTest, AllocationStateSurvivesServerRestart) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  options.root_space_limit = 100000;
  start_server(options);
  {
    auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value().mkdir("/proj").ok());
    ASSERT_TRUE(c.value().mkalloc("/proj", 5000).ok());
    ASSERT_TRUE(c.value().putfile("/proj/f", std::string(1200, 'x')).ok());
  }
  server_->stop();
  server_.reset();

  // A new server over the same export root replays the journal.
  start_server(options);
  auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
  ASSERT_TRUE(c.ok());
  auto info = c.value().lsalloc("/proj/f");
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  EXPECT_EQ(info.value().root, "/proj");
  EXPECT_EQ(info.value().limit, 5000u);
  EXPECT_EQ(info.value().inuse, 1200u);
  // And keeps enforcing: the budget has 3800 left.
  EXPECT_EQ(c.value()
                .putfile("/proj/g", std::string(3801, 'y'))
                .error()
                .code,
            ENOSPC);
  EXPECT_TRUE(c.value().putfile("/proj/g", std::string(3800, 'y')).ok());
}

TEST_F(TenantTest, RenameAcrossAllocationsRespectsBudgets) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  start_server(std::move(options));
  auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value().mkdir("/a").ok());
  ASSERT_TRUE(c.value().mkdir("/b").ok());
  ASSERT_TRUE(c.value().mkalloc("/a", 5000).ok());
  ASSERT_TRUE(c.value().mkalloc("/b", 1000).ok());
  ASSERT_TRUE(c.value().putfile("/a/f", std::string(2000, 'x')).ok());

  // A file whose charge the destination allocation cannot absorb.
  auto rc = c.value().rename("/a/f", "/b/f");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ENOSPC);
  // Directory moves across allocation roots are refused outright (they
  // would need a recursive re-charge).
  ASSERT_TRUE(c.value().mkdir("/a/sub").ok());
  auto dir_move = c.value().rename("/a/sub", "/b/sub");
  ASSERT_FALSE(dir_move.ok());
  EXPECT_EQ(dir_move.error().code, EXDEV);
  // Renaming an allocation root itself is refused.
  auto dir_rc = c.value().rename("/a", "/c");
  ASSERT_FALSE(dir_rc.ok());
  EXPECT_EQ(dir_rc.error().code, EBUSY);
  // A fitting file moves, and the charge moves with it.
  ASSERT_TRUE(c.value().putfile("/a/small", std::string(500, 'y')).ok());
  ASSERT_TRUE(c.value().rename("/a/small", "/b/small").ok());
  EXPECT_EQ(c.value().lsalloc("/a/x").value().inuse, 2000u);
  EXPECT_EQ(c.value().lsalloc("/b/x").value().inuse, 500u);
}

// --- Interop: peers without the capability ----------------------------------

TEST_F(TenantTest, CapabilityLessClientIsUnaffectedAndMkallocIsUnknown) {
  ServerOptions options = base_options();
  options.enable_allocations = true;
  options.root_space_limit = 100000;
  start_server(std::move(options));

  // Default client options: no alloc capability offered.
  auto c = connect_tenant("/CN=legacy");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.value().alloc_enabled());

  // The whole ordinary protocol works exactly as before...
  ASSERT_TRUE(c.value().mkdir("/old").ok());
  ASSERT_TRUE(c.value().putfile("/old/f", "payload").ok());
  EXPECT_EQ(c.value().getfile("/old/f").value(), "payload");
  EXPECT_EQ(c.value().stat("/old/f").value().size, 7u);
  ASSERT_TRUE(c.value().rename("/old/f", "/old/g").ok());
  ASSERT_TRUE(c.value().unlink("/old/g").ok());
  auto entries = c.value().getdir("/");
  ASSERT_TRUE(entries.ok());

  // ...but the alloc RPCs act like they do not exist on this session.
  EXPECT_EQ(c.value().mkalloc("/old", 100).error().code, ENOSYS);
  EXPECT_EQ(c.value().lsalloc("/").error().code, ENOSYS);

  // The journal stays invisible: never listed, never readable.
  for (const auto& e : entries.value()) {
    EXPECT_EQ(e.name.find(".__alloc__"), std::string::npos);
  }
  EXPECT_FALSE(c.value().getfile("/.__alloc__").ok());
  EXPECT_FALSE(c.value().putfile("/.__alloc__", "tamper").ok());
}

TEST_F(TenantTest, TenancyDisabledServerIsByteCompatible) {
  // No tenancy knobs at all: an alloc-capable client degrades gracefully.
  start_server(base_options());
  auto c = connect_tenant("/CN=alice", /*alloc_ops=*/true);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.value().alloc_enabled());  // server never echoed the cap
  EXPECT_EQ(c.value().mkalloc("/x", 100).error().code, ENOSYS);
  ASSERT_TRUE(c.value().putfile("/f", "ok").ok());
  EXPECT_EQ(c.value().getfile("/f").value(), "ok");
}

// --- Per-subject quotas ------------------------------------------------------

TEST_F(TenantTest, QuotaRefusesTheHogAndSparesOthers) {
  ServerOptions options = base_options();
  QuotaManager::Limits tight;
  tight.ops_per_sec = 3;  // burst defaults to one second's worth: 3 ops
  options.per_subject_quota["globus:/CN=hog"] = tight;
  start_server(std::move(options));

  auto hog = connect_tenant("/CN=hog");
  ASSERT_TRUE(hog.ok());
  auto meek = connect_tenant("/CN=meek");
  ASSERT_TRUE(meek.ok());

  // The hog's burst admits ~3 requests (continuous refill may pay for one
  // more over the wall-clock window), then the bucket is in debt.
  int served = 0, refused = 0;
  for (int i = 0; i < 6; i++) {
    auto rc = hog.value().whoami();
    if (rc.ok()) {
      served++;
    } else {
      refused++;
      EXPECT_EQ(rc.error().code, EDQUOT) << rc.error().to_string();
    }
  }
  EXPECT_GE(served, 3);
  EXPECT_LE(served, 4);
  EXPECT_GE(refused, 2);

  // The refusal is protocol-level: the session survives and other tenants
  // (and the owner) are untouched.
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(meek.value().whoami().ok()) << i;
  }
  // Exact accounting: every observed refusal is counted, nothing else is.
  EXPECT_EQ(registry_.counter("tenant.quota.rejected")->value(),
            static_cast<uint64_t>(refused));
  std::string hog_rejected =
      "tenant.subject." + url_encode("globus:/CN=hog") + ".rejected";
  EXPECT_EQ(registry_.counter(hog_rejected)->value(),
            static_cast<uint64_t>(refused));
}

TEST_F(TenantTest, OwnerIsExemptFromTheDefaultQuota) {
  ServerOptions options = base_options();
  options.default_quota.ops_per_sec = 2;
  start_server(std::move(options));

  // The owner authenticates via the hostname method.
  Client::Options copt;
  copt.timeout = 10 * kSecond;
  auto owner = Client::connect(server_->endpoint(), copt);
  ASSERT_TRUE(owner.ok());
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(owner.value().authenticate(credential).ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(owner.value().whoami().ok()) << i;
  }

  // An ordinary tenant is bound by the default.
  auto tenant = connect_tenant("/CN=alice");
  ASSERT_TRUE(tenant.ok());
  int refused = 0;
  for (int i = 0; i < 6; i++) {
    if (!tenant.value().whoami().ok()) refused++;
  }
  EXPECT_GE(refused, 1);
}

TEST_F(TenantTest, SubjectCountersAccountRequestsAndBytesExactly) {
  start_server(base_options());
  auto c = connect_tenant("/CN=audit");
  ASSERT_TRUE(c.ok());

  std::string payload(100, 'p');
  ASSERT_TRUE(c.value().putfile("/f", payload).ok());
  EXPECT_EQ(c.value().getfile("/f").value(), payload);
  ASSERT_TRUE(c.value().whoami().ok());

  std::string base = "tenant.subject." + url_encode("globus:/CN=audit");
  // Exactly three accountable requests (version/auth are exempt).
  EXPECT_EQ(registry_.counter(base + ".requests")->value(), 3u);
  // putfile carried 100 bytes in, getfile 100 bytes out; whoami's reply is
  // tiny. Line framing is not billed, so the window is narrow.
  uint64_t bytes = registry_.counter(base + ".bytes")->value();
  EXPECT_GE(bytes, 200u);
  EXPECT_LT(bytes, 400u);
  EXPECT_EQ(registry_.counter(base + ".rejected")->value(), 0u);
}

// --- Weighted fair-share admission: the hog-tenant chaos scenario -----------

TEST_F(TenantTest, HogFloodCannotStarveTheMeekTenant) {
  ServerOptions options = base_options();
  options.fair_share_slots = 2;
  options.fair_share_backlog = 4;
  start_server(std::move(options));

  ASSERT_TRUE(connect_tenant("/CN=setup").value().putfile("/hot", "x").ok());

  // The hog floods from many parallel sessions (one in-flight request
  // each); the meek tenant issues a modest sequential stream. Fair-share
  // admission must keep the meek tenant's latency bounded and only ever
  // shed the hog's excess.
  constexpr int kHogSessions = 8;
  constexpr int kHogOpsEach = 150;
  std::atomic<int> hog_served{0}, hog_refused{0}, hog_errors{0};
  std::vector<std::thread> hogs;
  hogs.reserve(kHogSessions);
  for (int i = 0; i < kHogSessions; i++) {
    auto c = connect_tenant("/CN=hog");
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    hogs.emplace_back(
        [this, client = std::make_shared<Client>(std::move(c).value()),
         &hog_served, &hog_refused, &hog_errors] {
          for (int op = 0; op < kHogOpsEach; op++) {
            auto rc = client->stat("/hot");
            if (rc.ok()) {
              hog_served++;
            } else if (rc.error().code == EBUSY) {
              hog_refused++;  // fair-share backlog shed the excess
            } else {
              hog_errors++;
            }
          }
        });
  }

  auto meek = connect_tenant("/CN=meek");
  ASSERT_TRUE(meek.ok());
  std::vector<Nanos> latencies;
  for (int op = 0; op < 60; op++) {
    auto start = std::chrono::steady_clock::now();
    auto rc = meek.value().stat("/hot");
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ASSERT_TRUE(rc.ok()) << "meek op " << op << ": "
                         << rc.error().to_string();
    latencies.push_back(elapsed);
  }
  for (auto& t : hogs) t.join();

  EXPECT_EQ(hog_errors.load(), 0);
  EXPECT_GT(hog_served.load(), 0);

  // The meek tenant was never refused (asserted above) and its p99 stayed
  // bounded: a sequential tenant holds at most one queued request, and DRR
  // grants every key a slot each round, so even under an 8-way flood a meek
  // op waits behind at most a handful of hog requests — not the whole
  // backlog. The 2s ceiling is ~100x the expected per-op time; it fails
  // only if fairness collapses into FIFO starvation.
  std::sort(latencies.begin(), latencies.end());
  Nanos p99 = latencies[latencies.size() * 99 / 100];
  EXPECT_LT(p99, 2 * kSecond) << "meek p99 " << p99 / kMillisecond << "ms";

  // Counter accounting: every admission got exactly one verdict. Grants are
  // the requests that actually ran (hog + 60 meek + the setup putfile);
  // rejections are exactly the EBUSY refusals the hog observed.
  uint64_t granted = registry_.counter("tenant.admit.granted")->value();
  uint64_t rejected = registry_.counter("tenant.admit.rejected")->value();
  EXPECT_EQ(static_cast<int>(granted), hog_served.load() + 60 + 1);
  EXPECT_EQ(static_cast<int>(rejected), hog_refused.load());
  EXPECT_EQ(registry_.gauge("tenant.admit.active")->value(), 0);
  EXPECT_EQ(registry_.gauge("tenant.admit.waiting")->value(), 0);
}

}  // namespace
}  // namespace tss::chirp
