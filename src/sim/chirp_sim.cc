#include "sim/chirp_sim.h"

#include "auth/hostname.h"
#include "util/strings.h"

namespace tss::sim {

SimChirpServer::SimChirpServer(Cluster& cluster, Options options)
    : cluster_(cluster), options_(std::move(options)) {
  node_ = cluster_.add_node();
  backend_ =
      std::make_unique<SimBackend>(cluster_.engine(), options_.backend);
  auth_ = std::make_unique<auth::ServerAuth>();
  // The hostname resolver trusts the simulated peer identity directly.
  auth_->add(std::make_unique<auth::HostnameServerMethod>(
      [](const std::string& ip) { return ip; }));
  config_.owner = options_.owner;
  auto acl = acl::Acl::parse(options_.root_acl_text);
  config_.root_acl = acl.ok() ? acl.value() : acl::Acl();
  config_.auth = auth_.get();
  config_.redirect = options_.redirect;
  config_.alloc = options_.alloc;
  config_.quotas = options_.quotas;
  // config_.metrics stays null: the sim records engine-time latencies via
  // record_rpc instead of wall-clock ones inside SessionCore.
  for (int i = 0; i < chirp::kOpCount; i++) {
    op_latency_[i] = metrics_.histogram(
        std::string("chirp.server.latency.") +
        chirp::op_name(static_cast<chirp::Op>(i)));
  }
  requests_ = metrics_.counter("chirp.server.requests");
  errors_ = metrics_.counter("chirp.server.errors");
  bytes_in_ = metrics_.counter("chirp.server.bytes_in");
  bytes_out_ = metrics_.counter("chirp.server.bytes_out");
}

void SimChirpServer::record_rpc(chirp::Op op, Nanos start, Nanos duration,
                                uint64_t bytes_in, uint64_t bytes_out,
                                int err, const std::string& subject) {
  op_latency_[static_cast<int>(op)]->record(duration);
  requests_->add();
  if (err != 0) errors_->add();
  if (bytes_in > 0) bytes_in_->add(bytes_in);
  if (bytes_out > 0) bytes_out_->add(bytes_out);
  metrics_.record_span(chirp::op_name(op), subject, bytes_in + bytes_out,
                       err, start, duration);
}

namespace {

// No-op challenge IO: the only sim auth method (hostname) never challenges.
class NullChallengeIo final : public auth::ChallengeIo {
 public:
  Result<void> send_challenge(const std::string&) override {
    return Error(EPROTO, "no challenges in simulation");
  }
  Result<std::string> read_response() override {
    return Error(EPROTO, "no challenges in simulation");
  }
};

}  // namespace

SimChirpClient::SimChirpClient(Cluster& cluster, int client_node,
                               SimChirpServer& server, std::string client_host,
                               bool cooperative)
    : cluster_(cluster),
      client_node_(client_node),
      server_(server),
      client_host_(std::move(client_host)),
      cooperative_(cooperative) {
  session_ = std::make_unique<chirp::SessionCore>(
      server_.config(), server_.backend(),
      auth::PeerInfo{client_host_, client_host_});
}

Task<Result<void>> SimChirpClient::connect() {
  // TCP three-way handshake: one round trip of tiny segments.
  co_await cluster_.transfer(client_node_, server_.node(), 64);
  co_await cluster_.transfer(server_.node(), client_node_, 64);

  // version exchange.
  chirp::Request version;
  version.op = chirp::Op::kVersion;
  if (cooperative_) version.caps.push_back(chirp::kCapRedirect);
  auto vr = co_await call(version, 0);
  if (!vr.ok()) co_return std::move(vr).take_error();

  // auth exchange: one RPC; dispatched to the real ServerAuth.
  chirp::Request auth_req;
  auth_req.op = chirp::Op::kAuth;
  auth_req.auth_method = "hostname";
  auth_req.auth_arg = "-";
  std::string line = chirp::encode_request(auth_req);
  Nanos auth_start = cluster_.engine().now();
  co_await cluster_.transfer(client_node_, server_.node(), line.size() + 1);
  NullChallengeIo io;
  auto subject = session_->authenticate("hostname", "-", io);
  co_await cluster_.engine().sleep_for(server_.options().rpc_cpu_cost);
  co_await cluster_.transfer(server_.node(), client_node_, 64);
  server_.record_rpc(chirp::Op::kAuth, auth_start,
                     cluster_.engine().now() - auth_start, 0, 0,
                     subject.ok() ? 0 : subject.error().code, client_host_);
  if (!subject.ok()) co_return std::move(subject).take_error();
  connected_ = true;
  co_return Result<void>::success();
}

Task<Result<SimChirpClient::CallResult>> SimChirpClient::call(
    chirp::Request request, uint64_t request_payload_size,
    const char* request_payload_data) {
  rpcs_++;
  Nanos start = cluster_.engine().now();
  // Request line (+ body) to the server. The line is produced by the real
  // encoder so framing overheads are the real ones.
  std::string line = chirp::encode_request(request);
  co_await cluster_.transfer(client_node_, server_.node(),
                             line.size() + 1 + request_payload_size);

  // Server side: real parse, real dispatch against the timed backend.
  auto parsed = chirp::parse_request_line(line);
  if (!parsed.ok()) co_return std::move(parsed).take_error();
  chirp::SessionCore::Payload payload;
  payload.data = request_payload_data;  // null = synthetic body
  payload.size = request_payload_size;

  CallResult result;
  result.response =
      session_->handle(parsed.value(), payload, &result.payload);

  // Wait for the backend's disk/cache work plus the server's per-RPC CPU.
  Nanos backend_done = server_.backend().take_completion();
  Nanos cpu_done = std::max(backend_done, cluster_.engine().now()) +
                   server_.options().rpc_cpu_cost;
  co_await cluster_.engine().sleep_until(cpu_done);

  // Response line + payload back to the client.
  std::string response_line = chirp::encode_response_line(result.response);
  uint64_t response_bytes =
      response_line.size() + 1 +
      std::max<uint64_t>(result.response.payload_size, result.payload.size());
  co_await cluster_.transfer(server_.node(), client_node_, response_bytes);
  server_.record_rpc(request.op, start, cluster_.engine().now() - start,
                     request_payload_size, response_bytes,
                     result.response.err, client_host_);
  co_return result;
}

namespace {
Result<int64_t> first_arg_i64(const chirp::Response& resp) {
  if (!resp.ok()) return Error(resp.err, resp.message);
  if (resp.args.empty()) return Error(EPROTO, "short reply");
  auto n = parse_i64(resp.args[0]);
  if (!n) return Error(EPROTO, "bad integer reply");
  return *n;
}
}  // namespace

Task<Result<int64_t>> SimChirpClient::open(std::string path,
                                           chirp::OpenFlags flags,
                                           uint32_t mode) {
  chirp::Request req;
  req.op = chirp::Op::kOpen;
  req.path = std::move(path);
  req.flags = flags;
  req.mode = mode;
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  co_return first_arg_i64(r.value().response);
}

Task<Result<uint64_t>> SimChirpClient::pread(int64_t fd, uint64_t size,
                                             int64_t offset) {
  chirp::Request req;
  req.op = chirp::Op::kPread;
  req.fd = fd;
  req.length = size;
  req.offset = offset;
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  auto n = first_arg_i64(r.value().response);
  if (!n.ok()) co_return std::move(n).take_error();
  co_return static_cast<uint64_t>(n.value());
}

Task<Result<uint64_t>> SimChirpClient::pwrite(int64_t fd, uint64_t size,
                                              int64_t offset) {
  chirp::Request req;
  req.op = chirp::Op::kPwrite;
  req.fd = fd;
  req.length = size;
  req.offset = offset;
  auto r = co_await call(req, size);
  if (!r.ok()) co_return std::move(r).take_error();
  auto n = first_arg_i64(r.value().response);
  if (!n.ok()) co_return std::move(n).take_error();
  co_return static_cast<uint64_t>(n.value());
}

Task<Result<void>> SimChirpClient::close_fd(int64_t fd) {
  chirp::Request req;
  req.op = chirp::Op::kClose;
  req.fd = fd;
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return Result<void>::success();
}

Task<Result<chirp::StatInfo>> SimChirpClient::stat(std::string path) {
  chirp::Request req;
  req.op = chirp::Op::kStat;
  req.path = std::move(path);
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return chirp::StatInfo::parse(r.value().response.args, 0);
}

Task<Result<void>> SimChirpClient::mkdir(std::string path) {
  chirp::Request req;
  req.op = chirp::Op::kMkdir;
  req.path = std::move(path);
  req.mode = 0755;
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return Result<void>::success();
}

Task<Result<void>> SimChirpClient::unlink(std::string path) {
  chirp::Request req;
  req.op = chirp::Op::kUnlink;
  req.path = std::move(path);
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return Result<void>::success();
}

Task<Result<std::string>> SimChirpClient::getfile(std::string path) {
  chirp::Request req;
  req.op = chirp::Op::kGetfile;
  req.path = std::move(path);
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return std::move(r.value().payload);
}

Task<Result<SimChirpClient::Fetch>> SimChirpClient::getfile_hint(
    std::string path) {
  chirp::Request req;
  req.op = chirp::Op::kGetfile;
  req.path = std::move(path);
  auto r = co_await call(req, 0);
  if (!r.ok()) co_return std::move(r).take_error();
  Fetch fetch;
  if (r.value().response.redirect) {
    fetch.redirect = r.value().response.redirect;
    co_return fetch;
  }
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  fetch.data = std::move(r.value().payload);
  co_return fetch;
}

Task<Result<void>> SimChirpClient::putfile(std::string path,
                                           std::string data) {
  // Real-content putfile: the session must see the actual bytes (this is
  // how stub files get written); timing is identical to a synthetic store.
  chirp::Request req;
  req.op = chirp::Op::kPutfile;
  req.path = std::move(path);
  req.length = data.size();
  auto r = co_await call(req, data.size(), data.data());
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return Result<void>::success();
}

Task<Result<void>> SimChirpClient::putfile_synthetic(std::string path,
                                                     uint64_t size) {
  chirp::Request req;
  req.op = chirp::Op::kPutfile;
  req.path = std::move(path);
  req.length = size;
  auto r = co_await call(req, size);
  if (!r.ok()) co_return std::move(r).take_error();
  if (!r.value().response.ok()) {
    co_return Error(r.value().response.err, r.value().response.message);
  }
  co_return Result<void>::success();
}

}  // namespace tss::sim
