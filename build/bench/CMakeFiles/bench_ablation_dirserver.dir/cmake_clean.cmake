file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dirserver.dir/bench_ablation_dirserver.cc.o"
  "CMakeFiles/bench_ablation_dirserver.dir/bench_ablation_dirserver.cc.o.d"
  "bench_ablation_dirserver"
  "bench_ablation_dirserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dirserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
