// SP5-like synthetic workload (§8 substitution; DESIGN.md §3).
//
// The real SP5 is a BaBar detector-simulation component: "not a single
// static executable, but a collection of scripts, executables, and dynamic
// libraries", whose configuration and data live behind a commercial I/O
// library. What its table in §8 measures is the I/O profile, which this
// module reproduces:
//
//   install — the application tree: many small scripts plus a set of
//             megabyte-scale shared libraries and an input dataset;
//   init    — the startup phase reads every script and library (the part
//             that inflates from 446 s locally to ~4500 s over a remote
//             filesystem: thousands of small-file round trips);
//   event   — each simulation event reads a slice of input data and appends
//             a result record (modest I/O, so remote execution stays within
//             a factor of two).
//
// All phases run against the recursive FileSystem interface, so the same
// workload runs on LocalFs (the "Unix" row), CfsFs (the "TSS" rows), or the
// NFS baseline via its own driver.
#pragma once

#include <cstdint>
#include <string>

#include "fs/filesystem.h"

namespace tss::workload {

struct Sp5Config {
  int script_count = 120;
  size_t script_bytes = 8 * 1024;
  int library_count = 30;
  size_t library_bytes = 1 << 20;
  size_t input_bytes = 8 << 20;
  size_t event_input_bytes = 512 * 1024;   // read per event
  size_t event_output_bytes = 64 * 1024;   // appended per event
  std::string root = "/sp5";

  std::string script_path(int i) const {
    return root + "/scripts/script" + std::to_string(i) + ".tcl";
  }
  std::string library_path(int i) const {
    return root + "/lib/libsp5-" + std::to_string(i) + ".so";
  }
  std::string input_path() const { return root + "/data/input.dat"; }
  std::string output_path() const { return root + "/data/output.dat"; }

  uint64_t install_bytes() const {
    return static_cast<uint64_t>(script_count) * script_bytes +
           static_cast<uint64_t>(library_count) * library_bytes + input_bytes;
  }
  // Number of files the init phase opens (the round-trip count that
  // dominates remote init time).
  int init_file_count() const { return script_count + library_count; }
};

// Creates the application tree on `fs` with deterministic content.
Result<void> sp5_install(fs::FileSystem& fs, const Sp5Config& config,
                         uint64_t seed = 1);

// Startup: opens and reads every script and library. Returns bytes read.
Result<uint64_t> sp5_init(fs::FileSystem& fs, const Sp5Config& config);

// Processes one event: reads its input slice, appends its output record.
Result<void> sp5_event(fs::FileSystem& fs, const Sp5Config& config,
                       int event_index);

}  // namespace tss::workload
