file(REMOVE_RECURSE
  "../lib/libtss_bench_common.a"
  "../lib/libtss_bench_common.pdb"
  "CMakeFiles/tss_bench_common.dir/common.cc.o"
  "CMakeFiles/tss_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
