
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapter/adapter.cc" "src/adapter/CMakeFiles/tss_adapter.dir/adapter.cc.o" "gcc" "src/adapter/CMakeFiles/tss_adapter.dir/adapter.cc.o.d"
  "/root/repo/src/adapter/dsfs_mount.cc" "src/adapter/CMakeFiles/tss_adapter.dir/dsfs_mount.cc.o" "gcc" "src/adapter/CMakeFiles/tss_adapter.dir/dsfs_mount.cc.o.d"
  "/root/repo/src/adapter/mountlist.cc" "src/adapter/CMakeFiles/tss_adapter.dir/mountlist.cc.o" "gcc" "src/adapter/CMakeFiles/tss_adapter.dir/mountlist.cc.o.d"
  "/root/repo/src/adapter/pool.cc" "src/adapter/CMakeFiles/tss_adapter.dir/pool.cc.o" "gcc" "src/adapter/CMakeFiles/tss_adapter.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tss_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/tss_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tss_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/tss_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/tss_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
