# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grid_physics "/root/repo/build/examples/grid_physics")
set_tests_properties(example_grid_physics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bio_gems "/root/repo/build/examples/bio_gems")
set_tests_properties(example_bio_gems PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpfs_pool "/root/repo/build/examples/dpfs_pool")
set_tests_properties(example_dpfs_pool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backup "/root/repo/build/examples/backup")
set_tests_properties(example_backup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
