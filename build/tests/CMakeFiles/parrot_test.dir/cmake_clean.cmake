file(REMOVE_RECURSE
  "CMakeFiles/parrot_test.dir/parrot/tracer_test.cc.o"
  "CMakeFiles/parrot_test.dir/parrot/tracer_test.cc.o.d"
  "parrot_test"
  "parrot_test.pdb"
  "parrot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
