#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "db/client.h"
#include "db/server.h"
#include "db/table.h"

namespace tss::db {
namespace {

Record sample(const std::string& id, const std::string& project,
              const std::string& size = "100") {
  return Record{{"id", id}, {"project", project}, {"size", size}};
}

TEST(RecordCodec, RoundTripsArbitraryValues) {
  Record record{{"id", "run 5/alpha"},
                {"note", "contains = and & and \n newline"},
                {"checksum", "00ff"}};
  auto decoded = decode_record(encode_record(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
}

TEST(RecordCodec, EmptyRecord) {
  auto decoded = decode_record("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(TableTest, PutGetRemove) {
  Table table;
  ASSERT_TRUE(table.put(sample("a", "babar")).ok());
  auto got = table.get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().at("project"), "babar");
  table.remove("a");
  EXPECT_EQ(table.get("a").code(), ENOENT);
  table.remove("a");  // idempotent
}

TEST(TableTest, PutRequiresId) {
  Table table;
  EXPECT_FALSE(table.put(Record{{"project", "x"}}).ok());
}

TEST(TableTest, PutReplacesAndReindexes) {
  Table table({"project"});
  ASSERT_TRUE(table.put(sample("a", "babar")).ok());
  ASSERT_TRUE(table.put(sample("a", "protomol")).ok());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.query("project", "babar").empty());
  ASSERT_EQ(table.query("project", "protomol").size(), 1u);
}

TEST(TableTest, IndexedAndUnindexedQueriesAgree) {
  Table indexed({"project"});
  Table unindexed;
  for (int i = 0; i < 50; i++) {
    Record r = sample("r" + std::to_string(i), i % 3 ? "babar" : "protomol",
                      std::to_string(i));
    ASSERT_TRUE(indexed.put(r).ok());
    ASSERT_TRUE(unindexed.put(r).ok());
  }
  EXPECT_EQ(indexed.query("project", "protomol").size(),
            unindexed.query("project", "protomol").size());
  // Unindexed field query falls back to scan and still works.
  EXPECT_EQ(indexed.query("size", "7").size(), 1u);
}

TEST(TableTest, RemoveCleansIndexes) {
  Table table({"project"});
  ASSERT_TRUE(table.put(sample("a", "babar")).ok());
  ASSERT_TRUE(table.put(sample("b", "babar")).ok());
  table.remove("a");
  auto matches = table.query("project", "babar");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].at("id"), "b");
}

TEST(TableTest, SerializeLoadRoundTrip) {
  Table table({"project"});
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        table.put(sample("r" + std::to_string(i), "p" + std::to_string(i % 2)))
            .ok());
  }
  Table restored({"project"});
  ASSERT_TRUE(restored.load(table.serialize()).ok());
  EXPECT_EQ(restored.size(), 10u);
  EXPECT_EQ(restored.query("project", "p1").size(), 5u);
}

TEST(TableTest, ScanVisitsEverything) {
  Table table;
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(table.put(sample("r" + std::to_string(i), "x")).ok());
  }
  int visited = 0;
  table.scan([&](const Record&) { visited++; });
  EXPECT_EQ(visited, 5);
}

class DbServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/db_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter_++);
    std::filesystem::create_directories(dir_);
    Server::Options options;
    options.snapshot_dir = dir_;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->start().ok());
  }
  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(dir_);
  }

  Client connect() {
    auto client = Client::connect(server_->endpoint());
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  std::string dir_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(DbServerTest, EndToEndCrud) {
  Client client = connect();
  ASSERT_TRUE(client.mktable("files", {"project"}).ok());
  ASSERT_TRUE(client.put("files", sample("run1", "babar")).ok());
  ASSERT_TRUE(client.put("files", sample("run2", "babar")).ok());
  ASSERT_TRUE(client.put("files", sample("run3", "protomol")).ok());

  auto got = client.get("files", "run2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().at("project"), "babar");

  auto babar = client.query("files", "project", "babar");
  ASSERT_TRUE(babar.ok());
  EXPECT_EQ(babar.value().size(), 2u);

  EXPECT_EQ(client.count("files").value(), 3u);

  ASSERT_TRUE(client.del("files", "run1").ok());
  EXPECT_EQ(client.count("files").value(), 2u);

  auto all = client.scan("files");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
}

TEST_F(DbServerTest, MissingTableAndRecordErrors) {
  Client client = connect();
  EXPECT_EQ(client.put("ghost", sample("a", "x")).code(), ENOENT);
  ASSERT_TRUE(client.mktable("t", {}).ok());
  EXPECT_EQ(client.get("t", "nothing").code(), ENOENT);
}

TEST_F(DbServerTest, SnapshotSurvivesRestart) {
  {
    Client client = connect();
    ASSERT_TRUE(client.mktable("files", {"project"}).ok());
    ASSERT_TRUE(client.put("files", sample("keep", "babar")).ok());
    ASSERT_TRUE(client.sync().ok());
  }
  server_->stop();

  Server::Options options;
  options.snapshot_dir = dir_;
  server_ = std::make_unique<Server>(options);
  ASSERT_TRUE(server_->start().ok());

  Client client = connect();
  auto got = client.get("files", "keep");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value().at("project"), "babar");
  // Indexes were rebuilt from the snapshot header.
  auto matches = client.query("files", "project", "babar");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 1u);
}

TEST_F(DbServerTest, ConcurrentClients) {
  Client a = connect();
  Client b = connect();
  ASSERT_TRUE(a.mktable("t", {}).ok());
  for (int i = 0; i < 20; i++) {
    Client& writer = i % 2 ? a : b;
    ASSERT_TRUE(
        writer.put("t", sample("r" + std::to_string(i), "p")).ok());
  }
  EXPECT_EQ(a.count("t").value(), 20u);
  EXPECT_EQ(b.count("t").value(), 20u);
}

}  // namespace
}  // namespace tss::db
