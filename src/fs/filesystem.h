// The recursive storage abstraction interface.
//
// "A TSS uses the same interface at every layer from the file server all the
// way up to the user interface: a filesystem with the familiar interface of
// open, read, rename, and so forth." (§3)
//
// Every abstraction in this library both *consumes* and *implements* this
// interface:
//
//   LocalFs   — a host directory (the degenerate case; also the substrate a
//               Chirp server exports).
//   CfsFs     — the paper's central filesystem: one Chirp server, untranslated.
//   DistFs    — the stub-file distributed filesystems. With a LocalFs as its
//               metadata filesystem it is the paper's DPFS; with a CfsFs it
//               is the DSFS. That one-line difference *is* the recursive
//               abstraction argument.
//   DsdbFs    — (gems/) the distributed shared database, which stores file
//               metadata in a database server instead of a directory tree.
//
// Like the Chirp protocol, reads and writes take explicit offsets; current-
// position state belongs to the adapter's descriptor table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chirp/protocol.h"
#include "util/result.h"

namespace tss::fs {

using chirp::DirEntry;
using chirp::OpenFlags;
using chirp::StatInfo;

// An open file. Closing is idempotent; destruction closes.
class File {
 public:
  virtual ~File() = default;
  virtual Result<size_t> pread(void* data, size_t size, int64_t offset) = 0;
  virtual Result<size_t> pwrite(const void* data, size_t size,
                                int64_t offset) = 0;
  virtual Result<void> fsync() = 0;
  virtual Result<StatInfo> fstat() = 0;
  virtual Result<void> close() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<File>> open(const std::string& path,
                                             const OpenFlags& flags,
                                             uint32_t mode) = 0;
  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags) {
    return open(path, flags, 0644);
  }

  virtual Result<StatInfo> stat(const std::string& path) = 0;
  virtual Result<void> unlink(const std::string& path) = 0;
  virtual Result<void> rename(const std::string& from,
                              const std::string& to) = 0;
  virtual Result<void> mkdir(const std::string& path, uint32_t mode) = 0;
  Result<void> mkdir(const std::string& path) { return mkdir(path, 0755); }
  virtual Result<void> rmdir(const std::string& path) = 0;
  virtual Result<void> truncate(const std::string& path, uint64_t size) = 0;
  virtual Result<std::vector<DirEntry>> readdir(const std::string& path) = 0;

  // Whole-file convenience. Default implementations loop over open/pread/
  // pwrite; abstractions with cheaper streaming paths (CfsFs uses Chirp's
  // getfile/putfile) override them.
  virtual Result<std::string> read_file(const std::string& path);
  virtual Result<void> write_file(const std::string& path,
                                  std::string_view data, uint32_t mode);
  Result<void> write_file(const std::string& path, std::string_view data) {
    return write_file(path, data, 0644);
  }
};

// Recursively creates every directory on `path` (mkdir -p).
Result<void> mkdir_recursive(FileSystem& fs, const std::string& path,
                             uint32_t mode = 0755);

// Copies one file between (possibly different) filesystems in fixed-size
// chunks; the building block replication is made of.
Result<uint64_t> copy_file(FileSystem& src, const std::string& src_path,
                           FileSystem& dst, const std::string& dst_path,
                           size_t chunk_size = 1 << 20);

}  // namespace tss::fs
