file(REMOVE_RECURSE
  "CMakeFiles/tss_db.dir/client.cc.o"
  "CMakeFiles/tss_db.dir/client.cc.o.d"
  "CMakeFiles/tss_db.dir/server.cc.o"
  "CMakeFiles/tss_db.dir/server.cc.o.d"
  "CMakeFiles/tss_db.dir/table.cc.o"
  "CMakeFiles/tss_db.dir/table.cc.o.d"
  "libtss_db.a"
  "libtss_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
