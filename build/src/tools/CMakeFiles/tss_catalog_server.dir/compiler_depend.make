# Empty compiler generated dependencies file for tss_catalog_server.
# This may be replaced when dependencies are built.
