// VersionedFs: transparent versioning — the last of the §10 future-work
// abstractions, and the mechanism behind the paper's closing application
// sketch: "A TSS is a natural platform for distributed backups, allowing
// cooperating users to easily record many backup images, thus allowing for
// on-line perusal, recovery, and forensic analysis of data over time."
//
// A recursive wrapper over any FileSystem: before a file is modified
// (opened writable, truncated, unlinked, or renamed over), its current
// content is snapshotted into a hidden ".versions" tree on the same
// underlying filesystem. Old versions can be listed, read, and restored.
// Stack it over a CfsFs and the version history lives on the file server,
// visible to every client; over a ReplicatedFs and the history itself is
// replicated — abstractions compose, which is the paper's whole point.
#pragma once

#include <string>
#include <vector>

#include "fs/filesystem.h"

namespace tss::fs {

class VersionedFs final : public FileSystem {
 public:
  // `base` is borrowed and must outlive the VersionedFs.
  explicit VersionedFs(FileSystem* base);

  struct VersionInfo {
    int sequence = 0;       // 1-based, ascending by age (1 = oldest)
    uint64_t size = 0;
    int64_t mtime = 0;      // when the snapshot was taken (backing mtime)
  };

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  // --- Version management ------------------------------------------------
  // All snapshots of `path`, oldest first (empty if never modified).
  Result<std::vector<VersionInfo>> versions(const std::string& path);
  // Content of one snapshot.
  Result<std::string> read_version(const std::string& path, int sequence);
  // Restores a snapshot as the current content (the pre-restore content is
  // snapshotted first, so a restore is itself undoable).
  Result<void> restore(const std::string& path, int sequence);
  // Drops all snapshots of `path` (reclaim space).
  Result<void> purge_versions(const std::string& path);

  // The hidden directory versions live under.
  static constexpr const char* kVersionRoot = "/.versions";

 private:
  // Directory holding `path`'s snapshots: /.versions/<urlencoded path>.
  std::string version_dir(const std::string& canonical) const;
  // Snapshots the current content of `canonical` if it exists as a file.
  Result<void> snapshot(const std::string& canonical);
  Result<int> next_sequence(const std::string& canonical);

  FileSystem* base_;
};

}  // namespace tss::fs
