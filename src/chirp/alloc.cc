#include "chirp/alloc.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <utility>

#include "util/checksum.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::chirp {

namespace {

// Snapshot rewrite threshold: a journal carrying this many records since the
// last compaction is folded into an A+U snapshot.
constexpr uint64_t kCompactThreshold = 4096;

std::string record_line(const std::string& body) {
  return body + " " + hash_to_hex(fnv1a64(body)) + "\n";
}

// Body of a journal line whose trailing checksum verifies; nullopt for a
// torn or corrupt record.
std::optional<std::string> checked_body(std::string_view line) {
  size_t space = line.rfind(' ');
  if (space == std::string_view::npos) return std::nullopt;
  std::string_view body = line.substr(0, space);
  auto want = hex_to_hash(line.substr(space + 1));
  if (!want || *want != fnv1a64(body)) return std::nullopt;
  return std::string(body);
}

}  // namespace

AllocTracker::AllocTracker(Options options) : options_(std::move(options)) {
  allocs_["/"] = Alloc{options_.root_limit, 0, 0};
  if (options_.metrics != nullptr) {
    mkallocs_ = options_.metrics->counter("tenant.alloc.mkalloc");
    enospc_ = options_.metrics->counter("tenant.alloc.enospc");
    journal_appends_ = options_.metrics->counter("tenant.alloc.journal_records");
    journal_replayed_ =
        options_.metrics->counter("tenant.alloc.journal_replayed");
    journal_compactions_ =
        options_.metrics->counter("tenant.alloc.journal_compactions");
    inuse_gauge_ = options_.metrics->gauge("tenant.alloc.inuse");
  }
}

AllocTracker::~AllocTracker() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

Result<std::unique_ptr<AllocTracker>> AllocTracker::open(Options options) {
  std::unique_ptr<AllocTracker> tracker(new AllocTracker(std::move(options)));
  if (!tracker->options_.journal_path.empty()) {
    TSS_ASSIGN_OR_RETURN(uint64_t replayed, tracker->replay());
    if (tracker->journal_replayed_ != nullptr) {
      tracker->journal_replayed_->add(replayed);
    }
    std::lock_guard<std::mutex> lock(tracker->mutex_);
    TSS_RETURN_IF_ERROR(tracker->compact_locked());
    tracker->update_gauge_locked();
  }
  return tracker;
}

Result<uint64_t> AllocTracker::replay() {
  int fd = ::open(options_.journal_path.c_str(),
                  O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error(errno, "alloc journal open: " + options_.journal_path);
  }
  journal_fd_ = fd;
  std::string contents;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) contents.append(buf, n);
  if (n < 0) return Error(errno, "alloc journal read");

  // Applies one verified record body; false = structurally invalid (treated
  // exactly like a bad checksum: the tail from here is dropped).
  auto apply = [&](const std::string& body) -> bool {
    std::vector<std::string> words = split_words(body);
    if (words.size() < 2) return false;
    const std::string root = url_decode(words[1]);
    if (words[0] == "A" && words.size() == 3) {
      auto limit = parse_u64(words[2]);
      if (!limit || *limit == 0 || root == "/") return false;
      if (allocs_.count(root)) return false;
      allocs_[enclosing_root(root)].inuse += *limit;
      allocs_[root] = Alloc{*limit, 0, 0};
      return true;
    }
    if (words[0] == "C" && words.size() == 3) {
      auto delta = parse_i64(words[2]);
      if (!delta) return false;
      Alloc& a = allocs_[enclosing_root(root)];
      if (*delta >= 0) {
        a.inuse += static_cast<uint64_t>(*delta);
      } else {
        a.inuse -= std::min(a.inuse, static_cast<uint64_t>(-*delta));
      }
      return true;
    }
    if (words[0] == "U" && words.size() == 3) {
      auto inuse = parse_u64(words[2]);
      if (!inuse) return false;
      allocs_[enclosing_root(root)].inuse = *inuse;
      return true;
    }
    if (words[0] == "R" && words.size() == 2) {
      auto it = allocs_.find(root);
      if (it == allocs_.end() || root == "/") return false;
      uint64_t limit = it->second.limit;
      allocs_.erase(it);
      Alloc& parent = allocs_[enclosing_root(root)];
      parent.inuse -= std::min(parent.inuse, limit);
      return true;
    }
    return false;
  };

  uint64_t applied = 0;
  size_t good_end = 0;
  size_t pos = 0;
  bool torn = false;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      torn = true;  // partial final line: a write cut short by a crash
      break;
    }
    auto body = checked_body(std::string_view(contents).substr(pos, nl - pos));
    if (!body || !apply(*body)) {
      torn = true;
      break;
    }
    applied++;
    pos = nl + 1;
    good_end = pos;
  }
  if (torn && ::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
    return Error(errno, "alloc journal truncate");
  }

  // Committed file bytes = total inuse minus the child-limit pre-charges.
  uint64_t inuse_total = 0;
  uint64_t precharges = 0;
  for (const auto& [root, a] : allocs_) {
    inuse_total += a.inuse;
    if (root != "/") precharges += a.limit;
  }
  file_bytes_ = inuse_total - std::min(inuse_total, precharges);
  total_records_ = applied;
  return applied;
}

const std::string& AllocTracker::enclosing_root(
    const std::string& path) const {
  std::string p = path::sanitize(path);
  for (;;) {
    auto it = allocs_.find(p);
    if (it != allocs_.end()) return it->first;
    p = path::dirname(p);
  }
}

bool AllocTracker::fits(const Alloc& a, uint64_t bytes) {
  return a.limit == 0 || a.inuse + a.pending + bytes <= a.limit;
}

void AllocTracker::append_record(const std::string& body) {
  total_records_++;
  records_since_compact_++;
  if (journal_appends_ != nullptr) journal_appends_->add(1);
  if (journal_fd_ < 0) return;
  std::string line = record_line(body);
  // One write() per record: either the whole line lands or the replay
  // checksum rejects the tail. A failed append degrades to in-memory
  // accounting rather than blocking the data path.
  if (::write(journal_fd_, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
}

void AllocTracker::update_gauge_locked() {
  if (inuse_gauge_ != nullptr) {
    inuse_gauge_->set(static_cast<int64_t>(file_bytes_));
  }
}

void AllocTracker::maybe_compact_locked() {
  if (journal_fd_ >= 0 && records_since_compact_ >= kCompactThreshold) {
    // Best-effort: a failed compaction leaves the (valid) long journal.
    auto rc = compact_locked();
    (void)rc;
  }
}

Result<void> AllocTracker::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  return compact_locked();
}

Result<void> AllocTracker::compact_locked() {
  if (journal_fd_ < 0) return Result<void>::success();
  // std::map iterates parents before descendants ("/a" < "/a/b"), which is
  // the order A-record replay needs.
  std::string out;
  for (const auto& [root, a] : allocs_) {
    if (root == "/") continue;
    out += record_line("A " + url_encode(root) + " " + std::to_string(a.limit));
  }
  for (const auto& [root, a] : allocs_) {
    out += record_line("U " + url_encode(root) + " " + std::to_string(a.inuse));
  }
  std::string tmp = options_.journal_path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Error(errno, "alloc journal compact open: " + tmp);
  if (::write(fd, out.data(), out.size()) !=
          static_cast<ssize_t>(out.size()) ||
      ::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Error(err, "alloc journal compact write");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), options_.journal_path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Error(err, "alloc journal compact rename");
  }
  ::close(journal_fd_);
  journal_fd_ = ::open(options_.journal_path.c_str(),
                       O_WRONLY | O_APPEND | O_CLOEXEC);
  if (journal_fd_ < 0) return Error(errno, "alloc journal reopen");
  records_since_compact_ = 0;
  if (journal_compactions_ != nullptr) journal_compactions_->add(1);
  return Result<void>::success();
}

Result<void> AllocTracker::mkalloc(const std::string& dir, uint64_t limit) {
  if (limit == 0) return Error(EINVAL, "mkalloc: limit must be positive");
  std::string d = path::sanitize(dir);
  std::lock_guard<std::mutex> lock(mutex_);
  if (d == "/" || allocs_.count(d)) {
    return Error(EEXIST, "allocation exists at " + d);
  }
  Alloc& parent = allocs_[enclosing_root(d)];
  if (!fits(parent, limit)) {
    if (enospc_ != nullptr) enospc_->add(1);
    return Error(ENOSPC, "mkalloc: enclosing allocation lacks " +
                             std::to_string(limit) + " bytes");
  }
  parent.inuse += limit;
  allocs_[d] = Alloc{limit, 0, 0};
  append_record("A " + url_encode(d) + " " + std::to_string(limit));
  if (mkallocs_ != nullptr) mkallocs_->add(1);
  maybe_compact_locked();
  return Result<void>::success();
}

Result<AllocInfo> AllocTracker::lsalloc(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string& root = enclosing_root(path);
  const Alloc& a = allocs_.at(root);
  return AllocInfo{root, a.limit, a.inuse};
}

Result<void> AllocTracker::charge(const std::string& path, uint64_t bytes) {
  if (bytes == 0) return Result<void>::success();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string root = enclosing_root(path);
  Alloc& a = allocs_[root];
  if (!fits(a, bytes)) {
    if (enospc_ != nullptr) enospc_->add(1);
    return Error(ENOSPC, "allocation exceeded at " + root);
  }
  a.inuse += bytes;
  file_bytes_ += bytes;
  append_record("C " + url_encode(root) + " +" + std::to_string(bytes));
  update_gauge_locked();
  maybe_compact_locked();
  return Result<void>::success();
}

void AllocTracker::release(const std::string& path, uint64_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string root = enclosing_root(path);
  Alloc& a = allocs_[root];
  uint64_t given = std::min(a.inuse, bytes);
  if (given == 0) return;
  a.inuse -= given;
  file_bytes_ -= std::min(file_bytes_, given);
  append_record("C " + url_encode(root) + " -" + std::to_string(given));
  update_gauge_locked();
  maybe_compact_locked();
}

Result<void> AllocTracker::transfer(const std::string& from,
                                    const std::string& to, uint64_t bytes) {
  if (bytes == 0) return Result<void>::success();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string src = enclosing_root(from);
  const std::string dst = enclosing_root(to);
  if (src == dst) return Result<void>::success();
  Alloc& d = allocs_[dst];
  if (!fits(d, bytes)) {
    if (enospc_ != nullptr) enospc_->add(1);
    return Error(ENOSPC, "allocation exceeded at " + dst);
  }
  Alloc& s = allocs_[src];
  uint64_t taken = std::min(s.inuse, bytes);
  s.inuse -= taken;
  d.inuse += bytes;
  append_record("C " + url_encode(src) + " -" + std::to_string(taken));
  append_record("C " + url_encode(dst) + " +" + std::to_string(bytes));
  maybe_compact_locked();
  return Result<void>::success();
}

void AllocTracker::note_rmdir(const std::string& dir) {
  std::string d = path::sanitize(dir);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocs_.find(d);
  if (it == allocs_.end() || d == "/") return;
  uint64_t limit = it->second.limit;
  // rmdir only succeeds on an empty directory, so any residual inuse is
  // stale accounting; drop it along with the allocation.
  file_bytes_ -= std::min(file_bytes_, it->second.inuse);
  allocs_.erase(it);
  Alloc& parent = allocs_[enclosing_root(d)];
  parent.inuse -= std::min(parent.inuse, limit);
  append_record("R " + url_encode(d));
  update_gauge_locked();
  maybe_compact_locked();
}

void AllocTracker::sync_inuse(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string root = enclosing_root(path);
  Alloc& a = allocs_[root];
  file_bytes_ -= std::min(file_bytes_, a.inuse);
  file_bytes_ += bytes;
  a.inuse = bytes;
  append_record("U " + url_encode(root) + " " + std::to_string(bytes));
  update_gauge_locked();
  maybe_compact_locked();
}

Result<AllocTracker::Reservation> AllocTracker::reserve(
    const std::string& path, uint64_t bytes) {
  if (bytes == 0) return Reservation();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string root = enclosing_root(path);
  Alloc& a = allocs_[root];
  if (!fits(a, bytes)) {
    if (enospc_ != nullptr) enospc_->add(1);
    return Error(ENOSPC, "allocation exceeded at " + root);
  }
  a.pending += bytes;
  return Reservation(this, root, bytes);
}

void AllocTracker::reservation_commit(const std::string& root,
                                      uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The root may have been removed (note_rmdir) while the hold was live;
  // settling must not resurrect it as a phantom allocation — the tree the
  // charge belonged to is gone, so the commit degrades to a no-op.
  auto it = allocs_.find(root);
  if (it == allocs_.end()) return;
  Alloc& a = it->second;
  a.pending -= std::min(a.pending, bytes);
  a.inuse += bytes;
  file_bytes_ += bytes;
  append_record("C " + url_encode(root) + " +" + std::to_string(bytes));
  update_gauge_locked();
  maybe_compact_locked();
}

void AllocTracker::reservation_drop(const std::string& root, uint64_t bytes,
                                    bool /*external*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocs_.find(root);
  if (it == allocs_.end()) return;  // removed while the hold was live
  Alloc& a = it->second;
  a.pending -= std::min(a.pending, bytes);
}

AllocTracker::Reservation& AllocTracker::Reservation::operator=(
    Reservation&& other) noexcept {
  if (this != &other) {
    abort();
    tracker_ = std::exchange(other.tracker_, nullptr);
    root_ = std::move(other.root_);
    bytes_ = other.bytes_;
  }
  return *this;
}

void AllocTracker::Reservation::commit() {
  if (tracker_ == nullptr) return;
  tracker_->reservation_commit(root_, bytes_);
  tracker_ = nullptr;
}

void AllocTracker::Reservation::commit_external() {
  if (tracker_ == nullptr) return;
  tracker_->reservation_drop(root_, bytes_, true);
  tracker_ = nullptr;
}

void AllocTracker::Reservation::abort() {
  if (tracker_ == nullptr) return;
  tracker_->reservation_drop(root_, bytes_, false);
  tracker_ = nullptr;
}

std::vector<AllocTracker::Entry> AllocTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(allocs_.size());
  for (const auto& [root, a] : allocs_) {
    out.push_back(Entry{root, a.limit, a.inuse, a.pending});
  }
  return out;
}

uint64_t AllocTracker::journal_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_records_;
}

}  // namespace tss::chirp
